//! Rank-translating [`Comm`] adapter for the shrink-onto-survivors
//! recovery path.
//!
//! After the failure detector reaches a verdict, the surviving ranks
//! continue as a *smaller* cluster: survivor `i` is the `i`-th live rank
//! of the original run. [`SurvivorComm`] presents that contracted view —
//! `rank()`/`size()` are in survivor space and every point-to-point
//! operation translates survivor ranks to original ranks before touching
//! the wrapped transport, so all of the runtime's collectives (which are
//! built from `send`/`recv`) work unmodified on the shrunken cluster.
//!
//! The one primitive that cannot be forwarded is [`Comm::barrier`]: the
//! underlying backend's barrier still counts the dead rank as a
//! participant and would wait for it forever. `SurvivorComm` therefore
//! emulates the barrier with point-to-point messages among survivors
//! only (gather-to-leader + release broadcast on the reserved
//! [`TAG_SHRINK`](crate::tags::TAG_SHRINK) tag).

use crate::comm::{Comm, RecvRequest, SendRequest};
use crate::payload::{Payload, Tag};
use crate::tags::TAG_SHRINK;

/// A contracted view of a cluster after rank failure: borrows a backend
/// [`Comm`] and renumbers the surviving ranks densely (`0..survivors`).
///
/// Construct one on every surviving rank with the *same* survivor list
/// (the failure detector's collective verdict guarantees agreement), then
/// run ordinary SPMD code against it — sessions, redistribution and
/// collectives neither know nor care that rank ids are being translated
/// underneath. The adapter borrows the backend mutably (the same pattern
/// as the verifier's `CheckedComm`), so dropping it returns the original
/// (uncontracted) handle to the caller.
pub struct SurvivorComm<'a, C: Comm> {
    inner: &'a mut C,
    /// `survivors[new_rank] == old_rank`, strictly increasing.
    survivors: Vec<usize>,
    /// This rank's position in `survivors`.
    new_rank: usize,
}

impl<'a, C: Comm> SurvivorComm<'a, C> {
    /// Wraps `inner` as survivor-space member of the contracted cluster.
    ///
    /// `survivors` lists the original ranks that remain alive, in
    /// strictly increasing order; `inner.rank()` must be among them.
    ///
    /// # Panics
    /// Panics if `survivors` is empty, not strictly increasing, names a
    /// rank outside the original cluster, or omits `inner.rank()`.
    pub fn new(inner: &'a mut C, survivors: Vec<usize>) -> Self {
        assert!(!survivors.is_empty(), "survivor list is empty");
        assert!(
            survivors.windows(2).all(|w| w[0] < w[1]),
            "survivor list must be strictly increasing: {survivors:?}"
        );
        assert!(
            *survivors.last().expect("non-empty") < inner.size(),
            "survivor {} outside original cluster of {}",
            survivors.last().expect("non-empty"),
            inner.size()
        );
        let new_rank = survivors
            .iter()
            .position(|&old| old == inner.rank())
            .unwrap_or_else(|| {
                panic!(
                    "rank {} is not in the survivor list {:?}",
                    inner.rank(),
                    survivors
                )
            });
        SurvivorComm {
            inner,
            survivors,
            new_rank,
        }
    }

    /// The original (pre-failure) rank behind a survivor-space rank.
    #[inline]
    fn old(&self, new: usize) -> usize {
        assert!(
            new < self.survivors.len(),
            "rank {new} of {} survivors",
            self.survivors.len()
        );
        self.survivors[new]
    }

    /// The surviving original ranks, in survivor-rank order.
    pub fn survivors(&self) -> &[usize] {
        &self.survivors
    }
}

impl<C: Comm> Comm for SurvivorComm<'_, C> {
    #[inline]
    fn rank(&self) -> usize {
        self.new_rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.survivors.len()
    }

    #[inline]
    fn compute(&mut self, work: f64) {
        self.inner.compute(work);
    }

    #[inline]
    fn now_secs(&self) -> f64 {
        self.inner.now_secs()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        let dst = self.old(dst);
        self.inner.send(dst, tag, payload);
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        let src = self.old(src);
        self.inner.recv(src, tag)
    }

    /// Point-to-point barrier among survivors only: gather-to-leader then
    /// release broadcast on [`TAG_SHRINK`]. The backend's own barrier is
    /// *not* used — it would wait for the dead rank forever.
    fn barrier(&mut self) {
        let p = self.survivors.len();
        if p == 1 {
            return;
        }
        let token = Payload::from_u32(Vec::new());
        if self.new_rank == 0 {
            for src in 1..p {
                let _ = self.recv(src, TAG_SHRINK);
            }
            for dst in 1..p {
                self.send(dst, TAG_SHRINK, token.clone());
            }
        } else {
            self.send(0, TAG_SHRINK, token);
            let _ = self.recv(0, TAG_SHRINK);
        }
    }

    fn isend(&mut self, dst: usize, tag: Tag, payload: Payload) -> SendRequest {
        let old_dst = self.old(dst);
        self.inner.isend(old_dst, tag, payload);
        // The caller's handle stays in survivor space so a later
        // `wait_send` through this adapter remains consistent.
        SendRequest::new(dst, tag)
    }

    fn irecv(&mut self, src: usize, tag: Tag) -> RecvRequest {
        assert!(
            src < self.survivors.len(),
            "irecv from rank {src} of {}",
            self.survivors.len()
        );
        RecvRequest::new(src, tag)
    }

    fn wait_send(&mut self, req: SendRequest) {
        self.inner
            .wait_send(SendRequest::new(self.old(req.dst()), req.tag()));
    }

    fn wait_recv(&mut self, req: RecvRequest) -> Payload {
        let src = self.old(req.src());
        self.inner.wait_recv(RecvRequest::new(src, req.tag()))
    }

    fn test_recv(&mut self, req: &RecvRequest) -> bool {
        let translated = RecvRequest::new(self.old(req.src()), req.tag());
        self.inner.test_recv(&translated)
    }

    fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        let dst = self.old(dst);
        self.inner.post(dst, tag, payload)
    }

    fn recv_deadline(&mut self, src: usize, tag: Tag, timeout_secs: f64) -> Option<Payload> {
        let src = self.old(src);
        self.inner.recv_deadline(src, tag, timeout_secs)
    }

    fn crash(&mut self) -> bool {
        self.inner.crash()
    }

    /// Bounded variant of the emulated survivor barrier. Uses
    /// [`Comm::recv_deadline`] for every internal receive; any timeout
    /// aborts the emulation with `false`. (Unlike the backend barrier
    /// there is no shared arrival counter to withdraw from — a `false`
    /// simply means some survivor's token never came.)
    fn barrier_deadline(&mut self, timeout_secs: f64) -> bool {
        let p = self.survivors.len();
        if p == 1 {
            return true;
        }
        let token = Payload::from_u32(Vec::new());
        if self.new_rank == 0 {
            for src in 1..p {
                if self.recv_deadline(src, TAG_SHRINK, timeout_secs).is_none() {
                    return false;
                }
            }
            for dst in 1..p {
                if !self.post(dst, TAG_SHRINK, token.clone()) {
                    return false;
                }
            }
            true
        } else {
            if !self.post(0, TAG_SHRINK, token) {
                return false;
            }
            self.recv_deadline(0, TAG_SHRINK, timeout_secs).is_some()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};

    /// Three of four ranks wrap themselves as survivors (rank 2 "dies"
    /// by returning early) and run an allgather in survivor space.
    #[test]
    fn survivors_allgather_in_contracted_rank_space() {
        let report = Cluster::new(ClusterSpec::uniform(4)).run(|env| {
            if env.rank() == 2 {
                return Vec::new();
            }
            let mut comm = SurvivorComm::new(env, vec![0, 1, 3]);
            assert_eq!(comm.size(), 3);
            let me = comm.rank() as u64;
            let parts = comm.allgather(Tag(7), Payload::from_u64(vec![me]));
            parts.into_iter().map(|p| p.into_u64()[0]).collect()
        });
        for (rank, r) in report.results().enumerate() {
            if rank != 2 {
                assert_eq!(r, &vec![0, 1, 2]);
            }
        }
    }

    #[test]
    fn survivor_barrier_synchronizes_without_dead_rank() {
        let report = Cluster::new(ClusterSpec::uniform(4)).run(|env| {
            if env.rank() == 1 {
                return u64::MAX;
            }
            let mut comm = SurvivorComm::new(env, vec![0, 2, 3]);
            comm.barrier();
            assert!(comm.barrier_deadline(1.0));
            comm.rank() as u64
        });
        let got: Vec<u64> = report.results().copied().collect();
        assert_eq!(got, vec![0, u64::MAX, 1, 2]);
    }

    #[test]
    fn translates_point_to_point_ranks() {
        let report = Cluster::new(ClusterSpec::uniform(3)).run(|env| {
            if env.rank() == 0 {
                return 0u64;
            }
            // Survivors are old ranks {1, 2} -> new ranks {0, 1}.
            let mut comm = SurvivorComm::new(env, vec![1, 2]);
            if comm.rank() == 0 {
                comm.send(1, Tag(9), Payload::from_u64(vec![41]));
                0
            } else {
                comm.recv(0, Tag(9)).into_u64()[0]
            }
        });
        assert_eq!(report.ranks[2].result, 41);
    }

    #[test]
    fn rejects_wrapping_a_dead_rank() {
        let err = std::panic::catch_unwind(|| {
            Cluster::new(ClusterSpec::uniform(2)).run(|env| {
                if env.rank() == 1 {
                    let comm = SurvivorComm::new(env, vec![0]);
                    let _ = comm.survivors();
                }
                0u64
            })
        });
        assert!(err.is_err(), "wrapping a non-survivor must panic");
    }
}
