//! The backend-independent communication interface.
//!
//! Every layer of the runtime above the transport — the executor's
//! gather/scatter primitives, the load balancer's redistribution and
//! controller protocol, the inspector's "simple" strategy, the adaptive
//! session — is written against this trait instead of a concrete backend.
//! Two backends implement it:
//!
//! * [`Env`](crate::Env) — the deterministic virtual-time simulator in this
//!   crate (one thread per simulated workstation, cost-modelled clocks);
//! * `NativeComm` (crate `stance-native`) — one real OS thread per rank with
//!   wall-clock timing, for running the same SPMD programs on actual
//!   hardware.
//!
//! The trait is the paper's §2 SPMD messaging contract: point-to-point
//! tagged send/receive with per-(source, destination) FIFO order, a
//! cluster-wide barrier, and collectives built from those primitives. Two
//! extra hooks make time portable across backends:
//!
//! * [`Comm::compute`] — the *compute-cost charging hook*. The simulator
//!   advances its virtual clock by the charged work (scaled by machine
//!   speed and external load); a wall-clock backend does nothing, because
//!   real work already takes real time.
//! * [`Comm::now_secs`] — seconds since the start of the run: virtual
//!   seconds on the simulator, wall-clock seconds on a native backend. The
//!   load monitor's per-item times are derived from differences of this
//!   quantity, so the paper's load-balancing loop works unmodified on both
//!   backends (model-driven in the simulator, measurement-driven on real
//!   threads).
//!
//! Collectives have default implementations in terms of `send`/`recv`,
//! with **deterministic rank-order data flow**: `allgather` returns
//! payloads in rank order and `allreduce_f64` folds in rank order, so a
//! floating-point reduction is bitwise identical on every backend. The
//! simulator overrides them only to refine *cost* accounting (e.g.
//! hardware multicast), never the data movement order — the cross-backend
//! equivalence tests pin this.
//!
//! ## Nonblocking point-to-point (split-phase communication)
//!
//! [`Comm::isend`] and [`Comm::irecv`] split a message transfer into a
//! *post* and a *completion* so the caller can compute while bytes are in
//! flight — the classic inspector/executor latency-hiding step the
//! executor's split-phase gather is built on. The handles are small `Copy`
//! records ([`SendRequest`], [`RecvRequest`]): posting allocates nothing,
//! and callers that keep many requests outstanding (the executor) park
//! them in a recycled pool.
//!
//! Semantics, shared by every backend:
//!
//! * `isend` is a **buffered** send: the payload is handed to the
//!   transport at post time and the operation is complete immediately
//!   ([`Comm::wait_send`] never blocks). Posted sends join the same
//!   per-(source, destination) FIFO stream as blocking sends — mixing the
//!   two preserves order.
//! * `irecv` *posts* a receive; [`Comm::wait_recv`] blocks until the
//!   matching message arrives and returns it. Multiple requests may be
//!   outstanding, on the same or different `(source, tag)` streams; each
//!   `wait_recv` delivers the next matching message in FIFO order, and
//!   requests on different tags are isolated exactly as blocking receives
//!   are.
//! * [`Comm::test_recv`] is an advisory probe: `true` means the matching
//!   message has arrived and `wait_recv` will return without waiting.
//!   `false` means "not yet" — completion is only ever *claimed* by
//!   `wait_recv`. The trait default conservatively reports `false`; both
//!   in-tree backends override it with a real probe.
//!
//! What a backend's *clock* does at completion is backend-specific: the
//! simulator completes a `wait_recv` at `max(now, modelled arrival)` (plus
//! the receive overhead), so compute performed between post and wait hides
//! communication in virtual time exactly as it would on real hardware; the
//! native backend simply blocks until the peer's send lands, so the
//! overlap is real wall-clock overlap across OS threads.

use crate::payload::{Payload, Tag};

/// Handle to a posted nonblocking send. Plain `Copy` data — posting a
/// send never allocates. Sends are buffered (complete at post time), so
/// the handle exists for API symmetry and forward compatibility with
/// backends that acknowledge delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendRequest {
    dst: usize,
    tag: Tag,
}

impl SendRequest {
    /// A handle for a send posted to `dst` with `tag` (backends that
    /// override [`Comm::isend`] construct these).
    pub fn new(dst: usize, tag: Tag) -> Self {
        SendRequest { dst, tag }
    }

    /// The destination rank the send was posted to.
    #[inline]
    pub fn dst(&self) -> usize {
        self.dst
    }

    /// The tag the send was posted with.
    #[inline]
    pub fn tag(&self) -> Tag {
        self.tag
    }
}

/// Handle to a posted nonblocking receive. Plain `Copy` data — posting a
/// receive never allocates, so callers with many outstanding requests
/// (the executor's split-phase gather) can pool and recycle them freely.
///
/// Requests on one `(source, tag)` stream are interchangeable: each
/// [`Comm::wait_recv`] delivers the stream's next message in FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvRequest {
    src: usize,
    tag: Tag,
}

impl RecvRequest {
    /// A handle for a receive posted for `src`'s messages carrying `tag`.
    pub fn new(src: usize, tag: Tag) -> Self {
        RecvRequest { src, tag }
    }

    /// The source rank the receive was posted for.
    #[inline]
    pub fn src(&self) -> usize {
        self.src
    }

    /// The tag the receive was posted for.
    #[inline]
    pub fn tag(&self) -> Tag {
        self.tag
    }
}

/// One rank's handle onto its cluster: the SPMD communication interface
/// every backend provides. See the [module docs](self) for the contract.
///
/// All methods take `&mut self`: a rank is a single sequential process,
/// exactly as in the paper's SPMD model (§2). Methods documented as
/// *collective* must be called by every rank of the cluster in the same
/// order.
pub trait Comm {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn size(&self) -> usize;

    /// Charges `work` reference seconds of computation (the compute-cost
    /// charging hook). The simulator advances this rank's virtual clock
    /// according to machine speed and external load; wall-clock backends
    /// are a no-op — on real hardware the work itself takes the time.
    fn compute(&mut self, work: f64);

    /// Seconds since the start of the run on this rank: virtual seconds on
    /// the simulator, wall-clock seconds on a native backend. Monotone
    /// non-decreasing; differences of this value are what the load monitor
    /// records.
    fn now_secs(&self) -> f64;

    /// Sends `payload` to `dst` with `tag`. Sending to self is allowed.
    /// Messages between one (source, destination) pair are delivered in
    /// FIFO order per tag match.
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    fn send(&mut self, dst: usize, tag: Tag, payload: Payload);

    /// Receives the next message from `src` carrying `tag`, blocking until
    /// it arrives. Messages with other tags from `src` are buffered and
    /// returned by later matching receives (tag isolation).
    ///
    /// # Panics
    /// Panics if `src` is out of range, or if `src` terminates without ever
    /// sending a matching message (a deadlocked protocol is a bug).
    fn recv(&mut self, src: usize, tag: Tag) -> Payload;

    /// Synchronizes all ranks. Collective.
    fn barrier(&mut self);

    /// Posts a nonblocking (buffered) send of `payload` to `dst` with
    /// `tag`. The payload is handed to the transport immediately and the
    /// operation is complete at post time; the returned handle is consumed
    /// by [`Comm::wait_send`]. Posted sends join the same per-(source,
    /// destination) FIFO stream as blocking [`Comm::send`]s.
    ///
    /// Cost accounting matches `send`: a cost-modelling backend charges
    /// the per-message setup at post time and stamps the arrival from the
    /// post-completion clock — which is exactly what lets compute after
    /// the post hide the transfer.
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    fn isend(&mut self, dst: usize, tag: Tag, payload: Payload) -> SendRequest {
        self.send(dst, tag, payload);
        SendRequest::new(dst, tag)
    }

    /// Posts a nonblocking receive for the next message from `src`
    /// carrying `tag`. Returns immediately; the message is claimed by
    /// [`Comm::wait_recv`]. Any number of requests may be outstanding —
    /// per-(source, tag) FIFO order and tag isolation hold exactly as for
    /// blocking receives.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    fn irecv(&mut self, src: usize, tag: Tag) -> RecvRequest {
        assert!(
            src < self.size(),
            "irecv from rank {src} of {}",
            self.size()
        );
        RecvRequest::new(src, tag)
    }

    /// Completes a posted send. Sends are buffered, so this never blocks;
    /// it exists so split-phase code reads symmetrically and so a future
    /// backend with genuine send completion has a hook.
    fn wait_send(&mut self, _req: SendRequest) {}

    /// Completes a posted receive: blocks until the matching message
    /// arrives and returns its payload. On a cost-modelling backend the
    /// clock completes at `max(now, modelled arrival)` plus the receive
    /// overhead — compute performed between [`Comm::irecv`] and this call
    /// therefore hides the transfer.
    ///
    /// # Panics
    /// Panics if the sender terminates without ever sending a matching
    /// message (a deadlocked protocol is a bug).
    fn wait_recv(&mut self, req: RecvRequest) -> Payload {
        self.recv(req.src(), req.tag())
    }

    /// Advisory probe of a posted receive: `true` means the matching
    /// message has arrived and [`Comm::wait_recv`] will not wait. The
    /// probe never consumes the message and charges no time. This default
    /// conservatively reports `false` (completion is only claimed by
    /// `wait_recv`); both in-tree backends override it — the native
    /// backend with a genuine nonblocking mailbox poll, the simulator
    /// with a deterministic virtual-time check (see `Env::test_recv`'s
    /// documentation for the blocking caveat that keeps it deterministic).
    fn test_recv(&mut self, _req: &RecvRequest) -> bool {
        false
    }

    /// **Lossy** send: like [`Comm::send`] but, where `send` panics if the
    /// receiving rank has terminated, `post` reports it by returning
    /// `false` (and delivers nothing). This is the failure detector's send
    /// primitive — heartbeats and verdict exchanges must survive a dead
    /// peer. The default delegates to `send` (correct for any backend on
    /// which `send` cannot observe peer death); both in-tree backends
    /// override it with a genuinely non-panicking enqueue.
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        self.send(dst, tag, payload);
        true
    }

    /// Bounded receive: like [`Comm::recv`] but gives up after
    /// `timeout_secs`, returning `None` instead of blocking forever — and
    /// `None` (immediately) if the sender is provably gone. This is the
    /// failure detector's receive primitive: a wedged-but-alive peer is
    /// *detected* (timeout) rather than hung on. Messages with other tags
    /// pulled in while waiting are buffered exactly as `recv` buffers
    /// them; a timed-out wait loses nothing.
    ///
    /// Clock semantics per backend: the simulator charges the full
    /// `timeout_secs` to its virtual clock on a timeout (deterministic —
    /// the wait really cost that long); the native backend waits in wall
    /// time. The default delegates to the blocking `recv` (no timeout) so
    /// third-party `Comm` impls keep compiling; both in-tree backends
    /// override it.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    fn recv_deadline(&mut self, src: usize, tag: Tag, _timeout_secs: f64) -> Option<Payload> {
        Some(self.recv(src, tag))
    }

    /// Terminates this rank as abruptly as the backend can manage — the
    /// fault injector's "kill" hook. In-process backends cannot die
    /// abruptly (every rank shares one OS process with its peers), so
    /// the default returns `false` and the injector falls back to a
    /// panic-unwind kill. A process-per-rank backend overrides this to
    /// terminate its whole OS process (SIGKILL — no unwinding, no drop
    /// glue, no goodbye on the wire) and therefore never returns.
    fn crash(&mut self) -> bool {
        false
    }

    /// Bounded barrier: like [`Comm::barrier`] but gives up after
    /// `timeout_secs`, returning `false` if the barrier did not release
    /// (a participant is dead, wedged, or the barrier was poisoned by a
    /// panicking peer). On `false` this rank has withdrawn its arrival,
    /// so the barrier state stays consistent. Collective among the ranks
    /// that do arrive. The default delegates to the blocking `barrier`
    /// and returns `true`; both in-tree backends override it.
    fn barrier_deadline(&mut self, _timeout_secs: f64) -> bool {
        self.barrier();
        true
    }

    /// Sends the same payload to several destinations. The default is a
    /// loop of unicast sends; backends with hardware multicast override it.
    fn multicast(&mut self, dsts: &[usize], tag: Tag, payload: Payload) {
        match dsts {
            [] => {}
            [dst] => self.send(*dst, tag, payload),
            [head @ .., last] => {
                for &dst in head {
                    self.send(dst, tag, payload.clone());
                }
                self.send(*last, tag, payload);
            }
        }
    }

    /// Broadcast from `root`: the root multicasts `payload` to everyone and
    /// returns it; the others receive it. Collective.
    fn bcast_from(&mut self, root: usize, tag: Tag, payload: Payload) -> Payload {
        if self.rank() == root {
            let others: Vec<usize> = (0..self.size()).filter(|&r| r != root).collect();
            self.multicast(&others, tag, payload.clone());
            payload
        } else {
            self.recv(root, tag)
        }
    }

    /// Gathers every rank's payload at `root` (in rank order). Returns
    /// `Some(payloads)` at the root and `None` elsewhere. Collective.
    fn gather_to(&mut self, root: usize, tag: Tag, payload: Payload) -> Option<Vec<Payload>> {
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(src, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, payload);
            None
        }
    }

    /// All-gather: every rank ends up with every rank's payload, in rank
    /// order. Collective.
    fn allgather(&mut self, tag: Tag, payload: Payload) -> Vec<Payload> {
        let others: Vec<usize> = (0..self.size()).filter(|&r| r != self.rank()).collect();
        self.multicast(&others, tag, payload.clone());
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank() {
                out.push(payload.clone());
            } else {
                out.push(self.recv(src, tag));
            }
        }
        out
    }

    /// All-reduce of one `f64` per rank with a binary operation. Everyone
    /// returns the reduction over all ranks, **folded in rank order** — the
    /// result is bitwise identical on every backend and every rank.
    /// Collective.
    fn allreduce_f64(&mut self, tag: Tag, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let parts = self.allgather(tag, Payload::from_f64(vec![value]));
        parts
            .into_iter()
            .map(|p| p.into_f64()[0])
            .reduce(&op)
            .expect("cluster has at least one rank")
    }

    /// Personalized all-to-all exchange: sends each `(dst, payload)` pair,
    /// then receives one payload from each rank listed in `recv_from` (in
    /// the given order). The caller must know its senders — in STANCE they
    /// always follow from replicated interval tables or schedules.
    fn exchange(
        &mut self,
        sends: Vec<(usize, Payload)>,
        recv_from: &[usize],
        tag: Tag,
    ) -> Vec<(usize, Payload)> {
        for (dst, payload) in sends {
            self.send(dst, tag, payload);
        }
        recv_from
            .iter()
            .map(|&src| (src, self.recv(src, tag)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // The trait's default collectives are exercised against both backends
    // by the workspace-level `tests/comm_conformance.rs` suite; `Env`'s
    // implementation is covered by `cluster.rs` tests.
}
