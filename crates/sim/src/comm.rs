//! The backend-independent communication interface.
//!
//! Every layer of the runtime above the transport — the executor's
//! gather/scatter primitives, the load balancer's redistribution and
//! controller protocol, the inspector's "simple" strategy, the adaptive
//! session — is written against this trait instead of a concrete backend.
//! Two backends implement it:
//!
//! * [`Env`](crate::Env) — the deterministic virtual-time simulator in this
//!   crate (one thread per simulated workstation, cost-modelled clocks);
//! * `NativeComm` (crate `stance-native`) — one real OS thread per rank with
//!   wall-clock timing, for running the same SPMD programs on actual
//!   hardware.
//!
//! The trait is the paper's §2 SPMD messaging contract: point-to-point
//! tagged send/receive with per-(source, destination) FIFO order, a
//! cluster-wide barrier, and collectives built from those primitives. Two
//! extra hooks make time portable across backends:
//!
//! * [`Comm::compute`] — the *compute-cost charging hook*. The simulator
//!   advances its virtual clock by the charged work (scaled by machine
//!   speed and external load); a wall-clock backend does nothing, because
//!   real work already takes real time.
//! * [`Comm::now_secs`] — seconds since the start of the run: virtual
//!   seconds on the simulator, wall-clock seconds on a native backend. The
//!   load monitor's per-item times are derived from differences of this
//!   quantity, so the paper's load-balancing loop works unmodified on both
//!   backends (model-driven in the simulator, measurement-driven on real
//!   threads).
//!
//! Collectives have default implementations in terms of `send`/`recv`,
//! with **deterministic rank-order data flow**: `allgather` returns
//! payloads in rank order and `allreduce_f64` folds in rank order, so a
//! floating-point reduction is bitwise identical on every backend. The
//! simulator overrides them only to refine *cost* accounting (e.g.
//! hardware multicast), never the data movement order — the cross-backend
//! equivalence tests pin this.

use crate::payload::{Payload, Tag};

/// One rank's handle onto its cluster: the SPMD communication interface
/// every backend provides. See the [module docs](self) for the contract.
///
/// All methods take `&mut self`: a rank is a single sequential process,
/// exactly as in the paper's SPMD model (§2). Methods documented as
/// *collective* must be called by every rank of the cluster in the same
/// order.
pub trait Comm {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn size(&self) -> usize;

    /// Charges `work` reference seconds of computation (the compute-cost
    /// charging hook). The simulator advances this rank's virtual clock
    /// according to machine speed and external load; wall-clock backends
    /// are a no-op — on real hardware the work itself takes the time.
    fn compute(&mut self, work: f64);

    /// Seconds since the start of the run on this rank: virtual seconds on
    /// the simulator, wall-clock seconds on a native backend. Monotone
    /// non-decreasing; differences of this value are what the load monitor
    /// records.
    fn now_secs(&self) -> f64;

    /// Sends `payload` to `dst` with `tag`. Sending to self is allowed.
    /// Messages between one (source, destination) pair are delivered in
    /// FIFO order per tag match.
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    fn send(&mut self, dst: usize, tag: Tag, payload: Payload);

    /// Receives the next message from `src` carrying `tag`, blocking until
    /// it arrives. Messages with other tags from `src` are buffered and
    /// returned by later matching receives (tag isolation).
    ///
    /// # Panics
    /// Panics if `src` is out of range, or if `src` terminates without ever
    /// sending a matching message (a deadlocked protocol is a bug).
    fn recv(&mut self, src: usize, tag: Tag) -> Payload;

    /// Synchronizes all ranks. Collective.
    fn barrier(&mut self);

    /// Sends the same payload to several destinations. The default is a
    /// loop of unicast sends; backends with hardware multicast override it.
    fn multicast(&mut self, dsts: &[usize], tag: Tag, payload: Payload) {
        match dsts {
            [] => {}
            [dst] => self.send(*dst, tag, payload),
            [head @ .., last] => {
                for &dst in head {
                    self.send(dst, tag, payload.clone());
                }
                self.send(*last, tag, payload);
            }
        }
    }

    /// Broadcast from `root`: the root multicasts `payload` to everyone and
    /// returns it; the others receive it. Collective.
    fn bcast_from(&mut self, root: usize, tag: Tag, payload: Payload) -> Payload {
        if self.rank() == root {
            let others: Vec<usize> = (0..self.size()).filter(|&r| r != root).collect();
            self.multicast(&others, tag, payload.clone());
            payload
        } else {
            self.recv(root, tag)
        }
    }

    /// Gathers every rank's payload at `root` (in rank order). Returns
    /// `Some(payloads)` at the root and `None` elsewhere. Collective.
    fn gather_to(&mut self, root: usize, tag: Tag, payload: Payload) -> Option<Vec<Payload>> {
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(src, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, payload);
            None
        }
    }

    /// All-gather: every rank ends up with every rank's payload, in rank
    /// order. Collective.
    fn allgather(&mut self, tag: Tag, payload: Payload) -> Vec<Payload> {
        let others: Vec<usize> = (0..self.size()).filter(|&r| r != self.rank()).collect();
        self.multicast(&others, tag, payload.clone());
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank() {
                out.push(payload.clone());
            } else {
                out.push(self.recv(src, tag));
            }
        }
        out
    }

    /// All-reduce of one `f64` per rank with a binary operation. Everyone
    /// returns the reduction over all ranks, **folded in rank order** — the
    /// result is bitwise identical on every backend and every rank.
    /// Collective.
    fn allreduce_f64(&mut self, tag: Tag, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let parts = self.allgather(tag, Payload::from_f64(vec![value]));
        parts
            .into_iter()
            .map(|p| p.into_f64()[0])
            .reduce(&op)
            .expect("cluster has at least one rank")
    }

    /// Personalized all-to-all exchange: sends each `(dst, payload)` pair,
    /// then receives one payload from each rank listed in `recv_from` (in
    /// the given order). The caller must know its senders — in STANCE they
    /// always follow from replicated interval tables or schedules.
    fn exchange(
        &mut self,
        sends: Vec<(usize, Payload)>,
        recv_from: &[usize],
        tag: Tag,
    ) -> Vec<(usize, Payload)> {
        for (dst, payload) in sends {
            self.send(dst, tag, payload);
        }
        recv_from
            .iter()
            .map(|&src| (src, self.recv(src, tag)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // The trait's default collectives are exercised against both backends
    // by the workspace-level `tests/comm_conformance.rs` suite; `Env`'s
    // implementation is covered by `cluster.rs` tests.
}
