//! Network cost model: per-message setup, latency, bandwidth, multicast.
//!
//! The model is the classic postal/Hockney model the cluster-computing
//! literature of the era used: sending `n` bytes costs the *sender*
//! `send_setup` seconds of CPU, and the message arrives `latency + n ×
//! byte_time` seconds after the send completes. Two wire models are provided:
//!
//! * [`NetworkKind::PointToPoint`] — every message uses the full link
//!   independently. Fully deterministic; the default for experiments.
//! * [`NetworkKind::SharedBus`] — transmissions serialize on a single shared
//!   medium (10 Mbit/s Ethernet). Arbitration order depends on host thread
//!   scheduling, so virtual times can vary by a transmission's worth of time
//!   between runs; use it for Ethernet-contention studies, not for exact
//!   regression tests.
//!
//! Multicast (§3.6 of the paper) lets one send reach many destinations for a
//! single setup + transmission cost, as Ethernet broadcast frames do.
//!
//! Nonblocking operations add **no new timing rules**: an `isend` charges
//! the same setup and stamps the same arrival as a blocking send, and a
//! posted receive completes at `max(now, arrival)` plus the receive
//! overhead — exactly what a blocking receive would have paid had it been
//! issued at the wait point. Communication→computation overlap therefore
//! falls out of the existing model (compute charged between post and wait
//! advances the clock past the arrival stamp), and the synchronous path's
//! charging is untouched.

use std::sync::Mutex;

use crate::time::VTime;

/// Which wire model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetworkKind {
    /// Independent full-bandwidth links between every pair (deterministic).
    #[default]
    PointToPoint,
    /// A single shared medium; transmissions serialize (Ethernet-like).
    SharedBus,
}

/// Parameters of the interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// CPU seconds the sender spends per message (packetization, syscalls).
    /// This is the cost that punishes fine-grained communication.
    pub send_setup: f64,
    /// Wire latency per message in seconds, not overlappable with compute.
    pub latency: f64,
    /// Seconds per payload byte (1 / bandwidth).
    pub byte_time: f64,
    /// CPU seconds the receiver spends per message delivered.
    pub recv_overhead: f64,
    /// Whether a single send may target multiple destinations at one cost.
    pub multicast: bool,
    /// Wire model.
    pub kind: NetworkKind,
}

impl NetworkSpec {
    /// Mid-1990s 10 Mbit/s shared Ethernet with a userspace message-passing
    /// library (P4-era constants: ~1 ms per-message software overhead,
    /// ~1.1 MB/s effective bandwidth), but modeled point-to-point so runs are
    /// deterministic.
    pub fn ethernet_10mbit() -> Self {
        NetworkSpec {
            send_setup: 1.0e-3,
            latency: 1.0e-3,
            byte_time: 1.0 / 1.1e6,
            recv_overhead: 0.5e-3,
            multicast: false,
            kind: NetworkKind::PointToPoint,
        }
    }

    /// The same constants with true shared-bus contention.
    pub fn ethernet_10mbit_shared() -> Self {
        NetworkSpec {
            kind: NetworkKind::SharedBus,
            ..Self::ethernet_10mbit()
        }
    }

    /// An idealized zero-cost network. Useful in unit tests where only data
    /// movement correctness matters.
    pub fn zero_cost() -> Self {
        NetworkSpec {
            send_setup: 0.0,
            latency: 0.0,
            byte_time: 0.0,
            recv_overhead: 0.0,
            multicast: true,
            kind: NetworkKind::PointToPoint,
        }
    }

    /// Enables or disables hardware multicast.
    pub fn with_multicast(mut self, on: bool) -> Self {
        self.multicast = on;
        self
    }

    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics if any cost is negative or non-finite.
    pub fn validate(&self) {
        for (name, v) in [
            ("send_setup", self.send_setup),
            ("latency", self.latency),
            ("byte_time", self.byte_time),
            ("recv_overhead", self.recv_overhead),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "network parameter {name} must be finite and non-negative, got {v}"
            );
        }
    }

    /// Pure transmission time for `bytes` payload bytes (excludes setup and
    /// receive overhead).
    #[inline]
    pub fn transit_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 * self.byte_time
    }
}

impl Default for NetworkSpec {
    fn default() -> Self {
        Self::ethernet_10mbit()
    }
}

/// Shared runtime state of the interconnect (bus arbitration).
#[derive(Debug)]
pub struct NetworkState {
    spec: NetworkSpec,
    /// Virtual time at which the shared bus next becomes free.
    bus_free: Mutex<f64>,
}

impl NetworkState {
    /// Creates the runtime state for a spec.
    pub fn new(spec: NetworkSpec) -> Self {
        spec.validate();
        NetworkState {
            spec,
            bus_free: Mutex::new(0.0),
        }
    }

    /// The static parameters.
    #[inline]
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Computes the arrival time of a message handed to the network at
    /// `ready` (i.e. after the sender has paid its setup cost).
    pub fn arrival(&self, ready: VTime, bytes: usize) -> VTime {
        match self.spec.kind {
            NetworkKind::PointToPoint => ready + self.spec.transit_time(bytes),
            NetworkKind::SharedBus => {
                let mut free = self.bus_free.lock().expect("bus lock poisoned");
                let start = free.max(ready.as_secs());
                let done = start + self.spec.transit_time(bytes);
                *free = done;
                VTime::from_secs(done)
            }
        }
    }

    /// Arrival time for a multicast to `fanout` destinations: one transmission
    /// if multicast is supported (the caller must then deliver the same
    /// arrival to every destination); otherwise callers should loop over
    /// unicast sends instead.
    pub fn multicast_supported(&self) -> bool {
        self.spec.multicast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_cost() {
        let net = NetworkState::new(NetworkSpec {
            send_setup: 0.0,
            latency: 1.0e-3,
            byte_time: 1.0e-6,
            recv_overhead: 0.0,
            multicast: false,
            kind: NetworkKind::PointToPoint,
        });
        let a = net.arrival(VTime::from_secs(1.0), 1000);
        assert!((a.as_secs() - (1.0 + 1.0e-3 + 1.0e-3)).abs() < 1e-12);
    }

    #[test]
    fn shared_bus_serializes() {
        let net = NetworkState::new(NetworkSpec {
            send_setup: 0.0,
            latency: 0.0,
            byte_time: 1.0,
            recv_overhead: 0.0,
            multicast: false,
            kind: NetworkKind::SharedBus,
        });
        // Two 1-byte messages both ready at t=0: the second waits for the bus.
        let a = net.arrival(VTime::ZERO, 1);
        let b = net.arrival(VTime::ZERO, 1);
        assert_eq!(a.as_secs(), 1.0);
        assert_eq!(b.as_secs(), 2.0);
        // A message ready later than bus-free starts on time.
        let c = net.arrival(VTime::from_secs(10.0), 1);
        assert_eq!(c.as_secs(), 11.0);
    }

    #[test]
    fn zero_cost_network() {
        let net = NetworkState::new(NetworkSpec::zero_cost());
        assert_eq!(
            net.arrival(VTime::from_secs(2.0), 1 << 20),
            VTime::from_secs(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_latency_rejected() {
        NetworkState::new(NetworkSpec {
            latency: -1.0,
            ..NetworkSpec::zero_cost()
        });
    }

    #[test]
    fn ethernet_preset_sane() {
        let s = NetworkSpec::ethernet_10mbit();
        s.validate();
        // 1 MB at ~1.1 MB/s ≈ 0.95 s.
        let t = s.transit_time(1 << 20);
        assert!(t > 0.9 && t < 1.0, "1 MiB transit was {t}");
    }
}
