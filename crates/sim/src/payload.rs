//! Message payloads, tags, and the application [`Element`] type.
//!
//! A [`Payload`] is an owned, typed buffer. The runtime's control traffic
//! moves `u32`/`u64` index lists (inspector requests, schedules, load
//! reports) through the typed variants; application data — whatever
//! [`Element`] the application chose — travels as packed little-endian
//! bytes ([`Payload::Bytes`]) so the byte size the network cost model
//! charges matches what a wire format would carry, for any element type.

/// A small integer message tag, used to match sends with receives.
///
/// Tags below [`Tag::RESERVED_BASE`] are free for applications; the runtime
/// library uses the reserved range for its internal protocols (barrier,
/// load-balancing control, redistribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// First tag value reserved for the runtime's internal protocols.
    pub const RESERVED_BASE: u32 = 0xF000_0000;

    /// Whether this tag is in the runtime-reserved range.
    #[inline]
    pub fn is_reserved(self) -> bool {
        self.0 >= Self::RESERVED_BASE
    }

    /// A reserved tag at `RESERVED_BASE + offset`.
    #[inline]
    pub const fn reserved(offset: u32) -> Tag {
        Tag(Self::RESERVED_BASE + offset)
    }
}

/// Typed message payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// No data: pure synchronization / signal.
    Empty,
    /// Double-precision data (runtime control values, e.g. load reports).
    F64(Vec<f64>),
    /// 32-bit indices (local references, schedule entries).
    U32(Vec<u32>),
    /// 64-bit values (global indices, sizes, packed pairs).
    U64(Vec<u64>),
    /// Raw bytes (serialized structures).
    Bytes(Vec<u8>),
}

impl Payload {
    /// Payload of `f64` values.
    pub fn from_f64(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }

    /// Payload of `u32` values.
    pub fn from_u32(v: Vec<u32>) -> Self {
        Payload::U32(v)
    }

    /// Payload of `u64` values.
    pub fn from_u64(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }

    /// Payload of raw bytes.
    pub fn from_bytes(v: Vec<u8>) -> Self {
        Payload::Bytes(v)
    }

    /// Number of wire bytes this payload occupies (what the bandwidth term of
    /// the network model charges).
    pub fn size_bytes(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => v.len() * 8,
            Payload::U32(v) => v.len() * 4,
            Payload::U64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Number of elements (0 for `Empty`, bytes for `Bytes`).
    pub fn len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => v.len(),
            Payload::U32(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Whether the payload carries no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts `f64` data.
    ///
    /// # Panics
    /// Panics if the payload is not `F64`; a type mismatch on a matched tag is
    /// a protocol bug, not a recoverable condition.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts `u32` data.
    ///
    /// # Panics
    /// Panics if the payload is not `U32`.
    pub fn into_u32(self) -> Vec<u32> {
        match self {
            Payload::U32(v) => v,
            other => panic!("expected U32 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts `u64` data.
    ///
    /// # Panics
    /// Panics if the payload is not `U64`.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts raw bytes.
    ///
    /// # Panics
    /// Panics if the payload is not `Bytes`.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, got {}", other.kind_name()),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Payload::Empty => "Empty",
            Payload::F64(_) => "F64",
            Payload::U32(_) => "U32",
            Payload::U64(_) => "U64",
            Payload::Bytes(_) => "Bytes",
        }
    }
}

/// Per-vertex application state that the runtime can move between ranks.
///
/// This is the application-facing half of the data model: the runtime owns
/// partitioning, ghost exchange and redistribution, and stays generic over
/// *what* a data item is — a plain `f64` (the paper's arrays), a
/// single-precision `f32`, an index, or a fixed-size multi-field record
/// like `[f64; K]`. An element is `Copy`, fixed-size, and serializes to a
/// little-endian byte string; [`Element::pack`]/[`Element::unpack`] move
/// whole slices through a [`Payload::Bytes`] message, so the wire size the
/// network cost model charges is exactly `len × SIZE_BYTES`.
///
/// Implementations are provided for `f64`, `f32`, `u32`, `u64` and
/// `[f64; K]`. A custom element only needs the three required items:
///
/// ```
/// use stance_sim::{Element, Payload};
///
/// #[derive(Debug, Clone, Copy, PartialEq)]
/// struct Particle { pos: f64, vel: f64 }
///
/// impl Element for Particle {
///     const SIZE_BYTES: usize = 16;
///     fn zero() -> Self { Particle { pos: 0.0, vel: 0.0 } }
///     fn write_bytes(&self, out: &mut Vec<u8>) {
///         out.extend_from_slice(&self.pos.to_le_bytes());
///         out.extend_from_slice(&self.vel.to_le_bytes());
///     }
///     fn read_bytes(bytes: &[u8]) -> Self {
///         Particle {
///             pos: f64::from_le_bytes(bytes[..8].try_into().unwrap()),
///             vel: f64::from_le_bytes(bytes[8..].try_into().unwrap()),
///         }
///     }
/// }
///
/// let sent = vec![Particle { pos: 1.5, vel: -2.0 }; 3];
/// let payload = Particle::pack(&sent);
/// assert_eq!(payload.size_bytes(), 48);
/// assert_eq!(Particle::unpack(payload), sent);
/// ```
pub trait Element: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Wire size of one element in bytes. Must be nonzero and must match
    /// what [`Element::write_bytes`] appends.
    const SIZE_BYTES: usize;

    /// The additive identity / fill value (used for fresh ghost slots and
    /// uninitialized blocks during redistribution).
    fn zero() -> Self;

    /// Appends this element's exactly-`SIZE_BYTES`-long wire form.
    fn write_bytes(&self, out: &mut Vec<u8>);

    /// Reads one element back from exactly `SIZE_BYTES` bytes.
    fn read_bytes(bytes: &[u8]) -> Self;

    /// Packs a slice into one wire message.
    fn pack(values: &[Self]) -> Payload {
        let mut bytes = Vec::with_capacity(values.len() * Self::SIZE_BYTES);
        for v in values {
            v.write_bytes(&mut bytes);
        }
        debug_assert_eq!(bytes.len(), values.len() * Self::SIZE_BYTES);
        Payload::Bytes(bytes)
    }

    /// Unpacks a message produced by [`Element::pack`].
    ///
    /// # Panics
    /// Panics if the payload is not `Bytes` or its length is not a multiple
    /// of `SIZE_BYTES` — either is a protocol bug.
    fn unpack(payload: Payload) -> Vec<Self> {
        assert!(Self::SIZE_BYTES > 0, "zero-size elements cannot travel");
        let bytes = payload.into_bytes();
        assert_eq!(
            bytes.len() % Self::SIZE_BYTES,
            0,
            "payload of {} bytes is not a whole number of {}-byte elements",
            bytes.len(),
            Self::SIZE_BYTES
        );
        bytes
            .chunks_exact(Self::SIZE_BYTES)
            .map(Self::read_bytes)
            .collect()
    }
}

macro_rules! scalar_element {
    ($($t:ty => $zero:expr, $bytes:expr;)*) => {$(
        impl Element for $t {
            const SIZE_BYTES: usize = $bytes;
            #[inline]
            fn zero() -> Self {
                $zero
            }
            #[inline]
            fn write_bytes(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_bytes(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact element chunk"))
            }
        }
    )*};
}

scalar_element! {
    f64 => 0.0, 8;
    f32 => 0.0, 4;
    u32 => 0, 4;
    u64 => 0, 8;
}

impl<const K: usize> Element for [f64; K] {
    const SIZE_BYTES: usize = 8 * K;

    #[inline]
    fn zero() -> Self {
        [0.0; K]
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        for c in self {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    fn read_bytes(bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            Self::SIZE_BYTES,
            "array element expects exactly {} bytes, got {}",
            Self::SIZE_BYTES,
            bytes.len()
        );
        let mut a = [0.0; K];
        for (c, chunk) in a.iter_mut().zip(bytes.chunks_exact(8)) {
            *c = f64::from_le_bytes(chunk.try_into().expect("exact component chunk"));
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Payload::Empty.size_bytes(), 0);
        assert_eq!(Payload::from_f64(vec![0.0; 3]).size_bytes(), 24);
        assert_eq!(Payload::from_u32(vec![0; 3]).size_bytes(), 12);
        assert_eq!(Payload::from_u64(vec![0; 3]).size_bytes(), 24);
        assert_eq!(Payload::from_bytes(vec![0; 3]).size_bytes(), 3);
    }

    #[test]
    fn element_round_trip() {
        fn rt<T: Element>(v: Vec<T>) {
            let p = T::pack(&v);
            assert_eq!(p.size_bytes(), v.len() * T::SIZE_BYTES);
            assert_eq!(T::unpack(p), v);
        }
        rt(vec![1.0f64, -2.5, f64::MIN_POSITIVE]);
        rt(vec![1.0f32, 2.0]);
        rt(vec![1u32, 2]);
        rt(vec![u64::MAX, 2]);
        rt(vec![[1.0f64, -4.0], [0.25, 1e-300]]);
        rt(vec![[7.0f64; 3]; 4]);
    }

    #[test]
    fn element_pack_is_bytes_payload() {
        let p = f64::pack(&[1.5]);
        assert_eq!(p.size_bytes(), 8);
        assert_eq!(p, Payload::Bytes(1.5f64.to_le_bytes().to_vec()));
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn element_unpack_rejects_ragged_payload() {
        let _ = f64::unpack(Payload::from_bytes(vec![0; 12]));
    }

    #[test]
    fn lengths_and_emptiness() {
        assert!(Payload::Empty.is_empty());
        assert!(Payload::from_f64(vec![]).is_empty());
        assert_eq!(Payload::from_u32(vec![1, 2]).len(), 2);
        assert!(!Payload::from_u64(vec![1]).is_empty());
    }

    #[test]
    fn round_trips() {
        assert_eq!(Payload::from_f64(vec![1.5]).into_f64(), vec![1.5]);
        assert_eq!(Payload::from_u32(vec![7]).into_u32(), vec![7]);
        assert_eq!(Payload::from_u64(vec![9]).into_u64(), vec![9]);
        assert_eq!(Payload::from_bytes(vec![3]).into_bytes(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "expected F64 payload")]
    fn wrong_extraction_panics() {
        let _ = Payload::from_u32(vec![1]).into_f64();
    }

    #[test]
    fn reserved_tags() {
        assert!(!Tag(0).is_reserved());
        assert!(Tag::reserved(0).is_reserved());
        assert!(Tag::reserved(5) > Tag::reserved(0));
    }
}
