//! Message payloads and tags.
//!
//! A [`Payload`] is an owned, typed buffer. The executor's hot paths move
//! `f64` data (the paper's arrays are floating point) and `u32`/`u64` index
//! lists (inspector requests, schedules, control messages), so those get
//! first-class variants — no serialization round-trip, and the byte size used
//! by the network cost model matches what a wire format would carry.

use serde::{Deserialize, Serialize};

/// A small integer message tag, used to match sends with receives.
///
/// Tags below [`Tag::RESERVED_BASE`] are free for applications; the runtime
/// library uses the reserved range for its internal protocols (barrier,
/// load-balancing control, redistribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tag(pub u32);

impl Tag {
    /// First tag value reserved for the runtime's internal protocols.
    pub const RESERVED_BASE: u32 = 0xF000_0000;

    /// Whether this tag is in the runtime-reserved range.
    #[inline]
    pub fn is_reserved(self) -> bool {
        self.0 >= Self::RESERVED_BASE
    }

    /// A reserved tag at `RESERVED_BASE + offset`.
    #[inline]
    pub const fn reserved(offset: u32) -> Tag {
        Tag(Self::RESERVED_BASE + offset)
    }
}

/// Typed message payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// No data: pure synchronization / signal.
    Empty,
    /// Double-precision data (application arrays).
    F64(Vec<f64>),
    /// Single-precision data (the paper's Table 2 arrays are 4-byte
    /// floats; wire size matters to the cost model).
    F32(Vec<f32>),
    /// 32-bit indices (local references, schedule entries).
    U32(Vec<u32>),
    /// 64-bit values (global indices, sizes, packed pairs).
    U64(Vec<u64>),
    /// Raw bytes (serialized structures).
    Bytes(Vec<u8>),
}

impl Payload {
    /// Payload of `f64` values.
    pub fn from_f64(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }

    /// Payload of `f32` values.
    pub fn from_f32(v: Vec<f32>) -> Self {
        Payload::F32(v)
    }

    /// Payload of `u32` values.
    pub fn from_u32(v: Vec<u32>) -> Self {
        Payload::U32(v)
    }

    /// Payload of `u64` values.
    pub fn from_u64(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }

    /// Payload of raw bytes.
    pub fn from_bytes(v: Vec<u8>) -> Self {
        Payload::Bytes(v)
    }

    /// Number of wire bytes this payload occupies (what the bandwidth term of
    /// the network model charges).
    pub fn size_bytes(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => v.len() * 8,
            Payload::F32(v) => v.len() * 4,
            Payload::U32(v) => v.len() * 4,
            Payload::U64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Number of elements (0 for `Empty`, bytes for `Bytes`).
    pub fn len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => v.len(),
            Payload::F32(v) => v.len(),
            Payload::U32(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Whether the payload carries no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts `f64` data.
    ///
    /// # Panics
    /// Panics if the payload is not `F64`; a type mismatch on a matched tag is
    /// a protocol bug, not a recoverable condition.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts `f32` data.
    ///
    /// # Panics
    /// Panics if the payload is not `F32`.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("expected F32 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts `u32` data.
    ///
    /// # Panics
    /// Panics if the payload is not `U32`.
    pub fn into_u32(self) -> Vec<u32> {
        match self {
            Payload::U32(v) => v,
            other => panic!("expected U32 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts `u64` data.
    ///
    /// # Panics
    /// Panics if the payload is not `U64`.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts raw bytes.
    ///
    /// # Panics
    /// Panics if the payload is not `Bytes`.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, got {}", other.kind_name()),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Payload::Empty => "Empty",
            Payload::F64(_) => "F64",
            Payload::F32(_) => "F32",
            Payload::U32(_) => "U32",
            Payload::U64(_) => "U64",
            Payload::Bytes(_) => "Bytes",
        }
    }
}

/// Array element types that can travel in a [`Payload`]. Lets primitives
/// like redistribution be generic over precision (the paper's arrays are
/// single-precision; the kernel here uses doubles).
pub trait PayloadElement: Copy + Send + 'static {
    /// Wraps a vector of elements.
    fn wrap(v: Vec<Self>) -> Payload;
    /// Unwraps a payload of this element type.
    ///
    /// # Panics
    /// Panics on a type mismatch.
    fn unwrap(p: Payload) -> Vec<Self>;
}

impl PayloadElement for f64 {
    fn wrap(v: Vec<Self>) -> Payload {
        Payload::F64(v)
    }
    fn unwrap(p: Payload) -> Vec<Self> {
        p.into_f64()
    }
}

impl PayloadElement for f32 {
    fn wrap(v: Vec<Self>) -> Payload {
        Payload::F32(v)
    }
    fn unwrap(p: Payload) -> Vec<Self> {
        p.into_f32()
    }
}

impl PayloadElement for u32 {
    fn wrap(v: Vec<Self>) -> Payload {
        Payload::U32(v)
    }
    fn unwrap(p: Payload) -> Vec<Self> {
        p.into_u32()
    }
}

impl PayloadElement for u64 {
    fn wrap(v: Vec<Self>) -> Payload {
        Payload::U64(v)
    }
    fn unwrap(p: Payload) -> Vec<Self> {
        p.into_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Payload::Empty.size_bytes(), 0);
        assert_eq!(Payload::from_f64(vec![0.0; 3]).size_bytes(), 24);
        assert_eq!(Payload::from_f32(vec![0.0; 3]).size_bytes(), 12);
        assert_eq!(Payload::from_u32(vec![0; 3]).size_bytes(), 12);
        assert_eq!(Payload::from_u64(vec![0; 3]).size_bytes(), 24);
        assert_eq!(Payload::from_bytes(vec![0; 3]).size_bytes(), 3);
    }

    #[test]
    fn payload_element_round_trip() {
        fn rt<T: PayloadElement + PartialEq + std::fmt::Debug>(v: Vec<T>) {
            let p = T::wrap(v.clone());
            assert_eq!(T::unwrap(p), v);
        }
        rt(vec![1.0f64, 2.0]);
        rt(vec![1.0f32, 2.0]);
        rt(vec![1u32, 2]);
        rt(vec![1u64, 2]);
    }

    #[test]
    fn lengths_and_emptiness() {
        assert!(Payload::Empty.is_empty());
        assert!(Payload::from_f64(vec![]).is_empty());
        assert_eq!(Payload::from_u32(vec![1, 2]).len(), 2);
        assert!(!Payload::from_u64(vec![1]).is_empty());
    }

    #[test]
    fn round_trips() {
        assert_eq!(Payload::from_f64(vec![1.5]).into_f64(), vec![1.5]);
        assert_eq!(Payload::from_u32(vec![7]).into_u32(), vec![7]);
        assert_eq!(Payload::from_u64(vec![9]).into_u64(), vec![9]);
        assert_eq!(Payload::from_bytes(vec![3]).into_bytes(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "expected F64 payload")]
    fn wrong_extraction_panics() {
        let _ = Payload::from_u32(vec![1]).into_f64();
    }

    #[test]
    fn reserved_tags() {
        assert!(!Tag(0).is_reserved());
        assert!(Tag::reserved(0).is_reserved());
        assert!(Tag::reserved(5) > Tag::reserved(0));
    }
}
