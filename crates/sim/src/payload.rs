//! Message payloads, tags, and the application [`Element`] type.
//!
//! A [`Payload`] is an owned, typed buffer. The runtime's control traffic
//! moves `u32`/`u64` index lists (inspector requests, schedules, load
//! reports) through the typed variants; application data — whatever
//! [`Element`] the application chose — travels as packed little-endian
//! bytes ([`Payload::Bytes`]) so the byte size the network cost model
//! charges matches what a wire format would carry, for any element type.

/// A small integer message tag, used to match sends with receives.
///
/// Tags below [`Tag::RESERVED_BASE`] are free for applications; the runtime
/// library uses the reserved range for its internal protocols (barrier,
/// load-balancing control, redistribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// First tag value reserved for the runtime's internal protocols.
    pub const RESERVED_BASE: u32 = 0xF000_0000;

    /// Whether this tag is in the runtime-reserved range.
    #[inline]
    pub fn is_reserved(self) -> bool {
        self.0 >= Self::RESERVED_BASE
    }

    /// A reserved tag at `RESERVED_BASE + offset`.
    #[inline]
    pub const fn reserved(offset: u32) -> Tag {
        Tag(Self::RESERVED_BASE + offset)
    }
}

/// Typed message payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// No data: pure synchronization / signal.
    Empty,
    /// Double-precision data (runtime control values, e.g. load reports).
    F64(Vec<f64>),
    /// 32-bit indices (local references, schedule entries).
    U32(Vec<u32>),
    /// 64-bit values (global indices, sizes, packed pairs).
    U64(Vec<u64>),
    /// Raw bytes (serialized structures).
    Bytes(Vec<u8>),
}

impl Payload {
    /// Payload of `f64` values.
    pub fn from_f64(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }

    /// Payload of `u32` values.
    pub fn from_u32(v: Vec<u32>) -> Self {
        Payload::U32(v)
    }

    /// Payload of `u64` values.
    pub fn from_u64(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }

    /// Payload of raw bytes.
    pub fn from_bytes(v: Vec<u8>) -> Self {
        Payload::Bytes(v)
    }

    /// Number of wire bytes this payload occupies (what the bandwidth term of
    /// the network model charges).
    pub fn size_bytes(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => v.len() * 8,
            Payload::U32(v) => v.len() * 4,
            Payload::U64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Number of *entries* in the payload's native unit: elements for the
    /// typed variants (`F64`/`U32`/`U64`), 0 for `Empty`, and — because an
    /// untyped byte buffer has no element width — **bytes** for
    /// [`Payload::Bytes`].
    ///
    /// The `Bytes` case is the one to watch: `len()` and
    /// [`Payload::size_bytes`] coincide there, so an
    /// `assert_eq!(packet.len(), n)` on a byte payload silently checks a
    /// *byte* count against whatever `n` is. When you mean wire bytes, call
    /// `size_bytes`; when you mean elements of a known [`Element`] type,
    /// divide `size_bytes()` by `Element::SIZE_BYTES` (as the executor's
    /// packet-length assertions do).
    pub fn len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => v.len(),
            Payload::U32(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Whether the payload carries no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts `f64` data.
    ///
    /// # Panics
    /// Panics if the payload is not `F64`; a type mismatch on a matched tag is
    /// a protocol bug, not a recoverable condition.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts `u32` data.
    ///
    /// # Panics
    /// Panics if the payload is not `U32`.
    pub fn into_u32(self) -> Vec<u32> {
        match self {
            Payload::U32(v) => v,
            other => panic!("expected U32 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts `u64` data.
    ///
    /// # Panics
    /// Panics if the payload is not `U64`.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {}", other.kind_name()),
        }
    }

    /// Extracts raw bytes.
    ///
    /// # Panics
    /// Panics if the payload is not `Bytes`.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, got {}", other.kind_name()),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Payload::Empty => "Empty",
            Payload::F64(_) => "F64",
            Payload::U32(_) => "U32",
            Payload::U64(_) => "U64",
            Payload::Bytes(_) => "Bytes",
        }
    }
}

/// Per-vertex application state that the runtime can move between ranks.
///
/// This is the application-facing half of the data model: the runtime owns
/// partitioning, ghost exchange and redistribution, and stays generic over
/// *what* a data item is — a plain `f64` (the paper's arrays), a
/// single-precision `f32`, an index, or a fixed-size multi-field record
/// like `[f64; K]`. An element is `Copy`, fixed-size, and serializes to a
/// little-endian byte string; [`Element::pack`]/[`Element::unpack`] move
/// whole slices through a [`Payload::Bytes`] message, so the wire size the
/// network cost model charges is exactly `len × SIZE_BYTES`.
///
/// On top of the three required per-element items sit the **bulk codecs**
/// [`Element::pack_into`] and [`Element::unpack_into`]: slice-level
/// pack/unpack with default implementations that loop over
/// [`Element::write_bytes`]/[`Element::read_bytes`]. The built-in elements
/// (`f64`, `f32`, `u32`, `u64`, `[f64; K]`) override them with bulk
/// little-endian copies, so a whole send segment is one memcpy-class
/// operation and a received payload decodes straight into its destination
/// slice — this is what makes the executor's steady-state communication
/// path allocation-free. An override must be **bitwise identical** to the
/// default loop (the wire format is the per-element format, concatenated);
/// `tests/transport_codecs.rs` pins this property for the built-ins.
///
/// Implementations are provided for `f64`, `f32`, `u32`, `u64` and
/// `[f64; K]`. A custom element only needs the three required items
/// (override the bulk pair too if your element is a plain fixed-size
/// record and the transport shows up in profiles):
///
/// ```
/// use stance_sim::{Element, Payload};
///
/// #[derive(Debug, Clone, Copy, PartialEq)]
/// struct Particle { pos: f64, vel: f64 }
///
/// impl Element for Particle {
///     const SIZE_BYTES: usize = 16;
///     fn zero() -> Self { Particle { pos: 0.0, vel: 0.0 } }
///     fn write_bytes(&self, out: &mut Vec<u8>) {
///         out.extend_from_slice(&self.pos.to_le_bytes());
///         out.extend_from_slice(&self.vel.to_le_bytes());
///     }
///     fn read_bytes(bytes: &[u8]) -> Self {
///         Particle {
///             pos: f64::from_le_bytes(bytes[..8].try_into().unwrap()),
///             vel: f64::from_le_bytes(bytes[8..].try_into().unwrap()),
///         }
///     }
/// }
///
/// let sent = vec![Particle { pos: 1.5, vel: -2.0 }; 3];
/// let payload = Particle::pack(&sent);
/// assert_eq!(payload.size_bytes(), 48);
/// assert_eq!(Particle::unpack(payload), sent);
/// ```
pub trait Element: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Wire size of one element in bytes. Must be nonzero and must match
    /// what [`Element::write_bytes`] appends.
    const SIZE_BYTES: usize;

    /// The additive identity / fill value (used for fresh ghost slots and
    /// uninitialized blocks during redistribution).
    fn zero() -> Self;

    /// Appends this element's exactly-`SIZE_BYTES`-long wire form.
    fn write_bytes(&self, out: &mut Vec<u8>);

    /// Reads one element back from exactly `SIZE_BYTES` bytes.
    fn read_bytes(bytes: &[u8]) -> Self;

    /// Appends the wire form of a whole slice (`values.len() × SIZE_BYTES`
    /// bytes) to `out`.
    ///
    /// The default loops over [`Element::write_bytes`] after one capacity
    /// reservation. Overrides must append **byte-for-byte** the same output
    /// as that loop — the bulk codec changes speed, never the wire format.
    fn pack_into(values: &[Self], out: &mut Vec<u8>) {
        out.reserve(values.len() * Self::SIZE_BYTES);
        for v in values {
            v.write_bytes(out);
        }
    }

    /// Decodes exactly `out.len()` elements from `bytes` directly into
    /// `out`, with no intermediate allocation. This is what the executor
    /// uses to land received payloads straight in the ghost region.
    ///
    /// # Panics
    /// Panics if `bytes.len() != out.len() × SIZE_BYTES` — a mismatched
    /// segment is a protocol bug.
    fn unpack_into(bytes: &[u8], out: &mut [Self]) {
        assert!(Self::SIZE_BYTES > 0, "zero-size elements cannot travel");
        assert_eq!(
            bytes.len(),
            out.len() * Self::SIZE_BYTES,
            "bulk unpack of {} bytes into {} {}-byte elements",
            bytes.len(),
            out.len(),
            Self::SIZE_BYTES
        );
        for (v, chunk) in out.iter_mut().zip(bytes.chunks_exact(Self::SIZE_BYTES)) {
            *v = Self::read_bytes(chunk);
        }
    }

    /// Packs a slice into one wire message (one [`Element::pack_into`] into
    /// a fresh buffer).
    fn pack(values: &[Self]) -> Payload {
        let mut bytes = Vec::new();
        Self::pack_into(values, &mut bytes);
        debug_assert_eq!(bytes.len(), values.len() * Self::SIZE_BYTES);
        Payload::Bytes(bytes)
    }

    /// Unpacks a message produced by [`Element::pack`].
    ///
    /// # Panics
    /// Panics if the payload is not `Bytes` or its length is not a multiple
    /// of `SIZE_BYTES` — either is a protocol bug.
    fn unpack(payload: Payload) -> Vec<Self> {
        assert!(Self::SIZE_BYTES > 0, "zero-size elements cannot travel");
        let bytes = payload.into_bytes();
        assert_eq!(
            bytes.len() % Self::SIZE_BYTES,
            0,
            "payload of {} bytes is not a whole number of {}-byte elements",
            bytes.len(),
            Self::SIZE_BYTES
        );
        let mut out = vec![Self::zero(); bytes.len() / Self::SIZE_BYTES];
        Self::unpack_into(&bytes, &mut out);
        out
    }
}

macro_rules! scalar_element {
    ($($t:ty => $zero:expr, $bytes:expr;)*) => {$(
        impl Element for $t {
            const SIZE_BYTES: usize = $bytes;
            #[inline]
            fn zero() -> Self {
                $zero
            }
            #[inline]
            fn write_bytes(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_bytes(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact element chunk"))
            }
            // Bulk override: one resize, then a fixed-width copy loop the
            // compiler turns into a straight memcpy on little-endian
            // targets (no per-element capacity checks).
            fn pack_into(values: &[Self], out: &mut Vec<u8>) {
                let start = out.len();
                out.resize(start + values.len() * $bytes, 0);
                for (chunk, v) in out[start..].chunks_exact_mut($bytes).zip(values) {
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            fn unpack_into(bytes: &[u8], out: &mut [Self]) {
                assert_eq!(
                    bytes.len(),
                    out.len() * $bytes,
                    "bulk unpack of {} bytes into {} {}-byte elements",
                    bytes.len(),
                    out.len(),
                    $bytes
                );
                for (v, chunk) in out.iter_mut().zip(bytes.chunks_exact($bytes)) {
                    *v = <$t>::from_le_bytes(chunk.try_into().expect("exact element chunk"));
                }
            }
        }
    )*};
}

scalar_element! {
    f64 => 0.0, 8;
    f32 => 0.0, 4;
    u32 => 0, 4;
    u64 => 0, 8;
}

impl<const K: usize> Element for [f64; K] {
    const SIZE_BYTES: usize = 8 * K;

    #[inline]
    fn zero() -> Self {
        [0.0; K]
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        for c in self {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    fn read_bytes(bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            Self::SIZE_BYTES,
            "array element expects exactly {} bytes, got {}",
            Self::SIZE_BYTES,
            bytes.len()
        );
        let mut a = [0.0; K];
        for (c, chunk) in a.iter_mut().zip(bytes.chunks_exact(8)) {
            *c = f64::from_le_bytes(chunk.try_into().expect("exact component chunk"));
        }
        a
    }

    // Bulk override: view the array slice as its flat `f64` component
    // stream and run the exact scalar copy loop — one resize, then a
    // fixed-width pattern the compiler turns into memcpy on little-endian
    // targets. (An iterator `flatten` instead of `as_flattened` defeats
    // the vectorizer and halves throughput.)
    fn pack_into(values: &[Self], out: &mut Vec<u8>) {
        if K == 0 {
            return; // zero-size records append nothing, as write_bytes would
        }
        let flat: &[f64] = values.as_flattened();
        let start = out.len();
        out.resize(start + flat.len() * 8, 0);
        for (chunk, c) in out[start..].chunks_exact_mut(8).zip(flat) {
            chunk.copy_from_slice(&c.to_le_bytes());
        }
    }

    fn unpack_into(bytes: &[u8], out: &mut [Self]) {
        assert!(Self::SIZE_BYTES > 0, "zero-size elements cannot travel");
        assert_eq!(
            bytes.len(),
            out.len() * Self::SIZE_BYTES,
            "bulk unpack of {} bytes into {} {}-byte elements",
            bytes.len(),
            out.len(),
            Self::SIZE_BYTES
        );
        let flat: &mut [f64] = out.as_flattened_mut();
        for (c, chunk) in flat.iter_mut().zip(bytes.chunks_exact(8)) {
            *c = f64::from_le_bytes(chunk.try_into().expect("exact component chunk"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Payload::Empty.size_bytes(), 0);
        assert_eq!(Payload::from_f64(vec![0.0; 3]).size_bytes(), 24);
        assert_eq!(Payload::from_u32(vec![0; 3]).size_bytes(), 12);
        assert_eq!(Payload::from_u64(vec![0; 3]).size_bytes(), 24);
        assert_eq!(Payload::from_bytes(vec![0; 3]).size_bytes(), 3);
    }

    #[test]
    fn element_round_trip() {
        fn rt<T: Element>(v: Vec<T>) {
            let p = T::pack(&v);
            assert_eq!(p.size_bytes(), v.len() * T::SIZE_BYTES);
            assert_eq!(T::unpack(p), v);
        }
        rt(vec![1.0f64, -2.5, f64::MIN_POSITIVE]);
        rt(vec![1.0f32, 2.0]);
        rt(vec![1u32, 2]);
        rt(vec![u64::MAX, 2]);
        rt(vec![[1.0f64, -4.0], [0.25, 1e-300]]);
        rt(vec![[7.0f64; 3]; 4]);
    }

    #[test]
    fn element_pack_is_bytes_payload() {
        let p = f64::pack(&[1.5]);
        assert_eq!(p.size_bytes(), 8);
        assert_eq!(p, Payload::Bytes(1.5f64.to_le_bytes().to_vec()));
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn element_unpack_rejects_ragged_payload() {
        let _ = f64::unpack(Payload::from_bytes(vec![0; 12]));
    }

    #[test]
    fn lengths_and_emptiness() {
        assert!(Payload::Empty.is_empty());
        assert!(Payload::from_f64(vec![]).is_empty());
        assert_eq!(Payload::from_u32(vec![1, 2]).len(), 2);
        assert!(!Payload::from_u64(vec![1]).is_empty());
    }

    /// Pins the `len` semantics: typed variants count elements, `Bytes`
    /// counts bytes (and therefore coincides with `size_bytes`). Anyone
    /// asserting element counts on a `Bytes` payload must divide by the
    /// element size — this test exists so the distinction can't silently
    /// drift.
    #[test]
    fn len_is_elements_except_bytes_which_is_bytes() {
        assert_eq!(Payload::from_f64(vec![0.0; 3]).len(), 3);
        assert_eq!(Payload::from_f64(vec![0.0; 3]).size_bytes(), 24);
        assert_eq!(Payload::from_u32(vec![0; 3]).len(), 3);
        assert_eq!(Payload::from_u64(vec![0; 3]).len(), 3);
        // Bytes: len == size_bytes == raw byte count, NOT an element count.
        let p = f64::pack(&[1.0, 2.0, 3.0]);
        assert_eq!(p.size_bytes(), 24);
        assert_eq!(p.len(), 24, "Bytes payloads count bytes, not elements");
        assert_eq!(p.size_bytes() / f64::SIZE_BYTES, 3);
    }

    #[test]
    fn bulk_codecs_match_per_element_loop() {
        fn check<T: Element>(values: &[T]) {
            // Reference: the per-element loop the defaults are defined by.
            let mut reference = Vec::new();
            for v in values {
                v.write_bytes(&mut reference);
            }
            // pack_into appends after existing content.
            let mut bulk = vec![0xAB, 0xCD];
            T::pack_into(values, &mut bulk);
            assert_eq!(&bulk[..2], &[0xAB, 0xCD]);
            assert_eq!(&bulk[2..], reference.as_slice());
            // unpack_into decodes in place; round-trip through write_bytes
            // compares bit patterns (works for NaN too).
            let mut out = vec![T::zero(); values.len()];
            T::unpack_into(&reference, &mut out);
            let mut rebuilt = Vec::new();
            for v in &out {
                v.write_bytes(&mut rebuilt);
            }
            assert_eq!(rebuilt, reference);
        }
        check::<f64>(&[1.5, -0.0, f64::INFINITY, f64::NAN, 1e-310]);
        check::<f32>(&[1.5, f32::NEG_INFINITY, f32::MIN_POSITIVE]);
        check::<u32>(&[0, 1, u32::MAX]);
        check::<u64>(&[7, u64::MAX]);
        check::<[f64; 3]>(&[[1.0, f64::NAN, -2.5], [0.0, -0.0, 4.0]]);
        check::<f64>(&[]);
    }

    #[test]
    #[should_panic(expected = "bulk unpack")]
    fn unpack_into_rejects_mismatched_lengths() {
        let mut out = [0.0f64; 2];
        f64::unpack_into(&[0u8; 8], &mut out);
    }

    #[test]
    fn round_trips() {
        assert_eq!(Payload::from_f64(vec![1.5]).into_f64(), vec![1.5]);
        assert_eq!(Payload::from_u32(vec![7]).into_u32(), vec![7]);
        assert_eq!(Payload::from_u64(vec![9]).into_u64(), vec![9]);
        assert_eq!(Payload::from_bytes(vec![3]).into_bytes(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "expected F64 payload")]
    fn wrong_extraction_panics() {
        let _ = Payload::from_u32(vec![1]).into_f64();
    }

    #[test]
    fn reserved_tags() {
        assert!(!Tag(0).is_reserved());
        assert!(Tag::reserved(0).is_reserved());
        assert!(Tag::reserved(5) > Tag::reserved(0));
    }
}
