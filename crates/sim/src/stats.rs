//! Per-rank accounting: where virtual time went and how much was
//! communicated.

/// Counters accumulated by one rank over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnvStats {
    /// Virtual seconds spent computing (includes slowdown from external load).
    pub compute_time: f64,
    /// Virtual seconds spent in per-message send setup.
    pub send_time: f64,
    /// Virtual seconds spent in per-message receive overhead.
    pub recv_time: f64,
    /// Virtual seconds spent waiting for messages that had not yet arrived.
    pub wait_time: f64,
    /// Virtual seconds spent waiting at barriers (including barrier latency).
    pub barrier_time: f64,
    /// Point-to-point messages sent (multicast counts once per destination
    /// when unsupported by the network, once total when supported).
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
}

impl EnvStats {
    /// Total virtual seconds attributed to communication (send setup, receive
    /// overhead, waiting, barriers).
    pub fn comm_time(&self) -> f64 {
        self.send_time + self.recv_time + self.wait_time + self.barrier_time
    }

    /// Merges another rank's counters into this one (for cluster-wide sums).
    pub fn merge(&mut self, other: &EnvStats) {
        self.compute_time += other.compute_time;
        self.send_time += other.send_time;
        self.recv_time += other.recv_time;
        self.wait_time += other.wait_time;
        self.barrier_time += other.barrier_time;
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.messages_received += other.messages_received;
        self.bytes_received += other.bytes_received;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = EnvStats {
            compute_time: 1.0,
            send_time: 2.0,
            recv_time: 3.0,
            wait_time: 4.0,
            barrier_time: 5.0,
            messages_sent: 6,
            bytes_sent: 7,
            messages_received: 8,
            bytes_received: 9,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.compute_time, 2.0);
        assert_eq!(a.messages_sent, 12);
        assert_eq!(a.bytes_received, 18);
        assert_eq!(a.comm_time(), 2.0 * (2.0 + 3.0 + 4.0 + 5.0));
    }

    #[test]
    fn default_is_zero() {
        let s = EnvStats::default();
        assert_eq!(s.comm_time(), 0.0);
        assert_eq!(s.messages_sent, 0);
    }
}
