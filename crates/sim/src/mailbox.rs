//! Warm point-to-point mailboxes between ranks.
//!
//! The message transport used to ride on `std::sync::mpsc`, which allocates
//! a heap node for **every** send — invisible in wall-clock terms for the
//! inspector's occasional protocol rounds, but a per-message allocation on
//! the executor's hot path, where the paper's loop runs thousands of
//! gathers between inspector invocations. A mailbox is the minimal
//! replacement: a mutex-protected ring (`VecDeque`) plus a condvar. The
//! deque's capacity warms up over the first iterations of a run and is
//! then reused forever, so steady-state sends and receives perform **zero
//! heap allocations** (the payload buffers themselves are recycled one
//! layer up, by the executor's `CommBuffers`).
//!
//! Semantics match the mpsc channel it replaces: FIFO per (source,
//! destination) pair, blocking receive, and disconnection reporting — a
//! send fails once the receiver is gone, a receive fails once the sender is
//! gone *and* the queue is drained (buffered messages are still delivered,
//! exactly as mpsc does).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::env::Msg;

/// The error a [`MailboxReceiver::recv`] returns when the sending rank
/// terminated without ever sending a matching message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Disconnected;

struct MailboxState {
    queue: VecDeque<Msg>,
    /// Set when either endpoint is dropped; each mailbox has exactly one
    /// sender and one receiver, so one flag serves both directions.
    closed: bool,
}

struct Mailbox {
    state: Mutex<MailboxState>,
    cv: Condvar,
}

/// Creates one directed mailbox: the sender half enqueues, the receiver
/// half dequeues in FIFO order.
pub(crate) fn mailbox() -> (MailboxSender, MailboxReceiver) {
    let core = Arc::new(Mailbox {
        state: Mutex::new(MailboxState {
            queue: VecDeque::new(),
            closed: false,
        }),
        cv: Condvar::new(),
    });
    (MailboxSender(Arc::clone(&core)), MailboxReceiver(core))
}

/// The enqueueing half of a mailbox (held by the source rank).
pub(crate) struct MailboxSender(Arc<Mailbox>);

impl MailboxSender {
    /// Enqueues a message; returns it back if the receiver hung up.
    pub(crate) fn send(&self, msg: Msg) -> Result<(), Msg> {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        if g.closed {
            return Err(msg);
        }
        g.queue.push_back(msg);
        drop(g);
        self.0.cv.notify_one();
        Ok(())
    }
}

impl Drop for MailboxSender {
    fn drop(&mut self) {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        g.closed = true;
        drop(g);
        self.0.cv.notify_all();
    }
}

/// The dequeueing half of a mailbox (held by the destination rank).
pub(crate) struct MailboxReceiver(Arc<Mailbox>);

impl MailboxReceiver {
    /// Blocks until a message is available and returns it; already-buffered
    /// messages are delivered even after the sender hung up.
    pub(crate) fn recv(&self) -> Result<Msg, Disconnected> {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        loop {
            if let Some(msg) = g.queue.pop_front() {
                return Ok(msg);
            }
            if g.closed {
                return Err(Disconnected);
            }
            g = self.0.cv.wait(g).expect("mailbox lock poisoned");
        }
    }
}

impl Drop for MailboxReceiver {
    fn drop(&mut self) {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        g.closed = true;
        // No notify needed: only the sender could be waiting, and senders
        // never block.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Payload, Tag};
    use crate::time::VTime;

    fn msg(tag: u32) -> Msg {
        Msg {
            tag: Tag(tag),
            arrival: VTime::ZERO,
            payload: Payload::Empty,
        }
    }

    #[test]
    fn fifo_delivery() {
        let (tx, rx) = mailbox();
        tx.send(msg(1)).unwrap();
        tx.send(msg(2)).unwrap();
        assert_eq!(rx.recv().unwrap().tag, Tag(1));
        assert_eq!(rx.recv().unwrap().tag, Tag(2));
    }

    #[test]
    fn buffered_messages_survive_sender_drop() {
        let (tx, rx) = mailbox();
        tx.send(msg(7)).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap().tag, Tag(7));
        assert!(matches!(rx.recv(), Err(Disconnected)));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = mailbox();
        drop(rx);
        assert!(tx.send(msg(1)).is_err());
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (tx, rx) = mailbox();
        let handle = std::thread::spawn(move || rx.recv().unwrap().tag);
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(msg(42)).unwrap();
        assert_eq!(handle.join().unwrap(), Tag(42));
    }
}
