//! Warm point-to-point mailboxes between ranks.
//!
//! The message transport used to ride on `std::sync::mpsc`, which allocates
//! a heap node for **every** send — invisible in wall-clock terms for the
//! inspector's occasional protocol rounds, but a per-message allocation on
//! the executor's hot path, where the paper's loop runs thousands of
//! gathers between inspector invocations. A mailbox is the minimal
//! replacement: a mutex-protected ring (`VecDeque`) plus a condvar. The
//! deque's capacity warms up over the first iterations of a run and is
//! then reused forever, so steady-state sends and receives perform **zero
//! heap allocations** (the payload buffers themselves are recycled one
//! layer up, by the executor's `CommBuffers`).
//!
//! Semantics match the mpsc channel it replaces: FIFO per (source,
//! destination) pair, blocking receive, and disconnection reporting — a
//! send fails once the receiver is gone, a receive fails once the sender is
//! gone *and* the queue is drained (buffered messages are still delivered,
//! exactly as mpsc does).
//!
//! The mailbox is generic over its message type so both backends share the
//! same transport: the simulator carries arrival-stamped messages
//! (`Msg`), the native thread-pool backend (crate `stance-native`) carries
//! plain `(tag, payload)` records — same deque, same warm-up behaviour,
//! same zero-allocation steady state on real threads.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::payload::Tag;

/// The error a [`MailboxReceiver::recv`] returns when the sending rank
/// terminated without ever sending a matching message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// Why a deadline-bounded receive returned without a message: the sender
/// is gone (and the queue drained), or the deadline passed first. The
/// distinction matters to failure detection — `Disconnected` is *proof*
/// the peer died, `TimedOut` is only suspicion (the peer may be wedged,
/// stalled, or slow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message available.
    TimedOut,
    /// The sender hung up and the queue is drained.
    Disconnected,
}

/// Messages that carry a [`Tag`] for receive matching.
pub trait Tagged {
    /// The message's tag.
    fn tag(&self) -> Tag;
}

/// A stream of messages from one source — the transport half a
/// [`TagBuffer`] matches over. [`MailboxReceiver`] is the in-process
/// implementation; the TCP backend implements it over a framed socket, so
/// the tag-isolation semantics the conformance suite pins stay one copy.
pub trait MsgSource<T> {
    /// Blocks until the next message arrives; `Err` once the source is
    /// provably gone with nothing left buffered.
    fn recv_msg(&mut self) -> Result<T, Disconnected>;

    /// Deadline-bounded receive, distinguishing a passed deadline from a
    /// provably-dead source.
    fn recv_msg_deadline(&mut self, deadline: Instant) -> Result<T, RecvTimeoutError>;

    /// Nonblocking probe: the next message if one is ready right now,
    /// `None` otherwise (a probe treats "gone" and "not yet" alike).
    fn try_recv_msg(&mut self) -> Option<T>;
}

impl<T> MsgSource<T> for MailboxReceiver<T> {
    fn recv_msg(&mut self) -> Result<T, Disconnected> {
        self.recv()
    }

    fn recv_msg_deadline(&mut self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(deadline)
    }

    fn try_recv_msg(&mut self) -> Option<T> {
        self.try_recv()
    }
}

/// Per-source tag-matched receive buffering, shared by both backends: a
/// receive for tag `t` skips (and preserves, in order) earlier messages
/// with other tags, so per-tag FIFO order survives out-of-order receives.
/// This is the one copy of the tag-isolation semantics the
/// `comm_conformance` suite pins.
#[derive(Debug)]
pub struct TagBuffer<T> {
    /// Buffered messages per source whose tag did not match an earlier
    /// recv.
    pending: Vec<VecDeque<T>>,
}

impl<T: Tagged> TagBuffer<T> {
    /// A buffer for a `size`-rank cluster.
    pub fn new(size: usize) -> Self {
        TagBuffer {
            pending: (0..size).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Returns the next message from `src` carrying `tag`: from the pending
    /// buffer if one matched earlier, otherwise blocking on `rx` and
    /// buffering mismatches. `rank` is the receiver's id, used in the
    /// diagnostic when `src` terminates without ever sending a match.
    ///
    /// # Panics
    /// Panics if `src`'s mailbox disconnects before a matching message
    /// arrives — a deadlocked protocol is a bug.
    pub fn recv_matching<S: MsgSource<T>>(
        &mut self,
        rx: &mut S,
        rank: usize,
        src: usize,
        tag: Tag,
    ) -> T {
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag() == tag) {
            return self.pending[src]
                .remove(pos)
                .expect("position was just found");
        }
        loop {
            let msg = rx.recv_msg().unwrap_or_else(|_disconnected| {
                panic!("rank {rank} waiting on tag {tag:?} from rank {src}, but the sender exited")
            });
            if msg.tag() == tag {
                return msg;
            }
            self.pending[src].push_back(msg);
        }
    }

    /// Like [`TagBuffer::recv_matching`] but **leaves the message in the
    /// buffer**: blocks (in host time) until a message from `src` carrying
    /// `tag` is physically available, then returns a reference to it. The
    /// next matching `recv_matching` will deliver exactly this message
    /// (per-tag FIFO order is preserved — mismatches pulled in while
    /// waiting are buffered in arrival order).
    ///
    /// This is what the simulator's `Comm::test_recv` builds on: the
    /// *virtual-time* readiness decision needs the message's modelled
    /// arrival stamp, which requires the message to be physically present —
    /// blocking for it keeps the probe deterministic (see
    /// `Env`'s `test_recv`).
    ///
    /// # Panics
    /// Panics if `src`'s mailbox disconnects before a matching message
    /// arrives — probing for a message that can never come is a protocol
    /// bug, exactly as with a blocking receive.
    pub fn peek_matching<S: MsgSource<T>>(
        &mut self,
        rx: &mut S,
        rank: usize,
        src: usize,
        tag: Tag,
    ) -> &T {
        if self.pending[src].iter().all(|m| m.tag() != tag) {
            loop {
                let msg = rx.recv_msg().unwrap_or_else(|_disconnected| {
                    panic!(
                        "rank {rank} probing for tag {tag:?} from rank {src}, but the sender exited"
                    )
                });
                let matched = msg.tag() == tag;
                self.pending[src].push_back(msg);
                if matched {
                    break;
                }
            }
        }
        self.pending[src]
            .iter()
            .find(|m| m.tag() == tag)
            .expect("a matching message was just ensured")
    }

    /// Deadline-bounded variant of [`TagBuffer::recv_matching`]: returns
    /// the next matching message if one arrives before `deadline`, or the
    /// reason it could not ([`RecvTimeoutError::Disconnected`] the moment
    /// the sender is provably gone, [`RecvTimeoutError::TimedOut`] when
    /// the deadline passes). Mismatched tags pulled in while waiting are
    /// buffered in arrival order, exactly as the blocking variant does —
    /// a timed-out wait loses nothing.
    pub fn recv_matching_deadline<S: MsgSource<T>>(
        &mut self,
        rx: &mut S,
        src: usize,
        tag: Tag,
        deadline: Instant,
    ) -> Result<T, RecvTimeoutError> {
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag() == tag) {
            return Ok(self.pending[src]
                .remove(pos)
                .expect("position was just found"));
        }
        loop {
            let msg = rx.recv_msg_deadline(deadline)?;
            if msg.tag() == tag {
                return Ok(msg);
            }
            self.pending[src].push_back(msg);
        }
    }

    /// Nonblocking probe: drains every message currently sitting in `rx`
    /// into the pending buffer (preserving arrival order), then reports
    /// whether one from `src` carrying `tag` is available. Never blocks and
    /// never consumes — a following `recv_matching` delivers the message.
    /// This is the wall-clock backend's `Comm::test_recv`.
    pub fn poll_matching<S: MsgSource<T>>(&mut self, rx: &mut S, src: usize, tag: Tag) -> bool {
        while let Some(msg) = rx.try_recv_msg() {
            self.pending[src].push_back(msg);
        }
        self.pending[src].iter().any(|m| m.tag() == tag)
    }
}

struct MailboxState<T> {
    queue: VecDeque<T>,
    /// Set when either endpoint is dropped; each mailbox has exactly one
    /// sender and one receiver, so one flag serves both directions.
    closed: bool,
}

struct Mailbox<T> {
    state: Mutex<MailboxState<T>>,
    cv: Condvar,
}

/// Creates one directed mailbox: the sender half enqueues, the receiver
/// half dequeues in FIFO order.
pub fn mailbox<T>() -> (MailboxSender<T>, MailboxReceiver<T>) {
    let core = Arc::new(Mailbox {
        state: Mutex::new(MailboxState {
            queue: VecDeque::new(),
            closed: false,
        }),
        cv: Condvar::new(),
    });
    (MailboxSender(Arc::clone(&core)), MailboxReceiver(core))
}

/// The enqueueing half of a mailbox (held by the source rank).
pub struct MailboxSender<T>(Arc<Mailbox<T>>);

impl<T> MailboxSender<T> {
    /// Enqueues a message; returns it back if the receiver hung up.
    pub fn send(&self, msg: T) -> Result<(), T> {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        if g.closed {
            return Err(msg);
        }
        g.queue.push_back(msg);
        drop(g);
        self.0.cv.notify_one();
        Ok(())
    }
}

impl<T> Drop for MailboxSender<T> {
    fn drop(&mut self) {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        g.closed = true;
        drop(g);
        self.0.cv.notify_all();
    }
}

/// One rank's transport endpoints, as built by [`mailbox_matrix`]:
/// `txs[dst]` sends into `dst`'s slot for this rank, `rxs[src]` receives
/// messages sent by `src`.
pub type RankMailboxes<T> = (Vec<MailboxSender<T>>, Vec<MailboxReceiver<T>>);

/// Builds the full `p × p` mailbox matrix for a cluster: one directed
/// mailbox per (source, destination) pair, including self-sends. Returns
/// one [`RankMailboxes`] pair per rank.
pub fn mailbox_matrix<T>(p: usize) -> Vec<RankMailboxes<T>> {
    let mut tx_rows: Vec<Vec<Option<MailboxSender<T>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut rx_rows: Vec<Vec<Option<MailboxReceiver<T>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, tx_row) in tx_rows.iter_mut().enumerate() {
        for (dst, slot) in tx_row.iter_mut().enumerate() {
            let (tx, rx) = mailbox();
            *slot = Some(tx);
            rx_rows[dst][src] = Some(rx);
        }
    }
    tx_rows
        .into_iter()
        .zip(rx_rows)
        .map(|(tx_row, rx_row)| {
            let txs = tx_row
                .into_iter()
                .map(|t| t.expect("mailbox matrix fully populated"))
                .collect();
            let rxs = rx_row
                .into_iter()
                .map(|r| r.expect("mailbox matrix fully populated"))
                .collect();
            (txs, rxs)
        })
        .collect()
}

/// The dequeueing half of a mailbox (held by the destination rank).
pub struct MailboxReceiver<T>(Arc<Mailbox<T>>);

impl<T> MailboxReceiver<T> {
    /// Blocks until a message is available and returns it; already-buffered
    /// messages are delivered even after the sender hung up.
    pub fn recv(&self) -> Result<T, Disconnected> {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        loop {
            if let Some(msg) = g.queue.pop_front() {
                return Ok(msg);
            }
            if g.closed {
                return Err(Disconnected);
            }
            g = self.0.cv.wait(g).expect("mailbox lock poisoned");
        }
    }

    /// Nonblocking receive: returns the next buffered message if one is
    /// available right now, `None` otherwise (including after the sender
    /// hung up with the queue drained — a *probe* treats "gone" and "not
    /// yet" alike; a blocking [`MailboxReceiver::recv`] is where
    /// disconnection is an error).
    pub fn try_recv(&self) -> Option<T> {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        g.queue.pop_front()
    }

    /// Like [`MailboxReceiver::recv`] but bounded by a wall-clock
    /// `deadline`: returns [`RecvTimeoutError::TimedOut`] once the
    /// deadline passes with no message, and
    /// [`RecvTimeoutError::Disconnected`] as soon as the sender is gone
    /// with the queue drained (dead peers are detected immediately, not
    /// after the full timeout). Buffered messages are always delivered.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        loop {
            if let Some(msg) = g.queue.pop_front() {
                return Ok(msg);
            }
            if g.closed {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::TimedOut);
            };
            let (guard, _timed_out) = self
                .0
                .cv
                .wait_timeout(g, remaining)
                .expect("mailbox lock poisoned");
            g = guard;
        }
    }
}

impl<T> Drop for MailboxReceiver<T> {
    fn drop(&mut self) {
        let mut g = self.0.state.lock().expect("mailbox lock poisoned");
        g.closed = true;
        // No notify needed: only the sender could be waiting, and senders
        // never block.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Msg;
    use crate::payload::{Payload, Tag};
    use crate::time::VTime;

    fn msg(tag: u32) -> Msg {
        Msg {
            tag: Tag(tag),
            arrival: VTime::ZERO,
            payload: Payload::Empty,
        }
    }

    #[test]
    fn fifo_delivery() {
        let (tx, rx) = mailbox();
        tx.send(msg(1)).unwrap();
        tx.send(msg(2)).unwrap();
        assert_eq!(rx.recv().unwrap().tag, Tag(1));
        assert_eq!(rx.recv().unwrap().tag, Tag(2));
    }

    #[test]
    fn buffered_messages_survive_sender_drop() {
        let (tx, rx) = mailbox();
        tx.send(msg(7)).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap().tag, Tag(7));
        assert!(matches!(rx.recv(), Err(Disconnected)));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = mailbox();
        drop(rx);
        assert!(tx.send(msg(1)).is_err());
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (tx, rx) = mailbox::<Msg>();
        let handle = std::thread::spawn(move || rx.recv().unwrap().tag);
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(msg(42)).unwrap();
        assert_eq!(handle.join().unwrap(), Tag(42));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = mailbox::<Msg>();
        assert!(rx.try_recv().is_none());
        tx.send(msg(3)).unwrap();
        assert_eq!(rx.try_recv().unwrap().tag, Tag(3));
        assert!(rx.try_recv().is_none());
        drop(tx);
        // After disconnect with an empty queue, a probe still reports
        // "nothing available" rather than erroring.
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn peek_matching_does_not_consume() {
        let (tx, mut rx) = mailbox::<Msg>();
        let mut buf = TagBuffer::new(1);
        tx.send(msg(9)).unwrap();
        tx.send(msg(5)).unwrap();
        // Peeking for tag 5 buffers the tag-9 message ahead of it.
        assert_eq!(buf.peek_matching(&mut rx, 0, 0, Tag(5)).tag, Tag(5));
        assert_eq!(buf.peek_matching(&mut rx, 0, 0, Tag(5)).tag, Tag(5));
        // Both messages are still deliverable, in per-tag FIFO order.
        assert_eq!(buf.recv_matching(&mut rx, 0, 0, Tag(5)).tag, Tag(5));
        assert_eq!(buf.recv_matching(&mut rx, 0, 0, Tag(9)).tag, Tag(9));
    }

    #[test]
    fn poll_matching_probes_without_blocking() {
        let (tx, mut rx) = mailbox::<Msg>();
        let mut buf = TagBuffer::new(1);
        assert!(!buf.poll_matching(&mut rx, 0, Tag(4)));
        tx.send(msg(8)).unwrap();
        assert!(
            !buf.poll_matching(&mut rx, 0, Tag(4)),
            "wrong tag is not a match"
        );
        tx.send(msg(4)).unwrap();
        assert!(buf.poll_matching(&mut rx, 0, Tag(4)));
        // The probe buffered, not consumed: both still arrive in order.
        assert_eq!(buf.recv_matching(&mut rx, 0, 0, Tag(8)).tag, Tag(8));
        assert_eq!(buf.recv_matching(&mut rx, 0, 0, Tag(4)).tag, Tag(4));
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let (tx, rx) = mailbox::<Msg>();
        let soon = Instant::now() + std::time::Duration::from_millis(5);
        assert!(matches!(
            rx.recv_deadline(soon),
            Err(RecvTimeoutError::TimedOut)
        ));
        tx.send(msg(2)).unwrap();
        let later = Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(rx.recv_deadline(later).unwrap().tag, Tag(2));
    }

    #[test]
    fn recv_deadline_reports_disconnect_immediately() {
        let (tx, rx) = mailbox::<Msg>();
        tx.send(msg(1)).unwrap();
        drop(tx);
        let far = Instant::now() + std::time::Duration::from_secs(60);
        // Buffered messages still deliver; then disconnect, not timeout.
        assert_eq!(rx.recv_deadline(far).unwrap().tag, Tag(1));
        let t0 = Instant::now();
        assert!(matches!(
            rx.recv_deadline(far),
            Err(RecvTimeoutError::Disconnected)
        ));
        assert!(t0.elapsed() < std::time::Duration::from_secs(10));
    }

    #[test]
    fn recv_deadline_wakes_on_cross_thread_send() {
        let (tx, rx) = mailbox::<Msg>();
        let handle = std::thread::spawn(move || {
            let deadline = Instant::now() + std::time::Duration::from_secs(30);
            rx.recv_deadline(deadline).unwrap().tag
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(msg(6)).unwrap();
        assert_eq!(handle.join().unwrap(), Tag(6));
    }

    #[test]
    fn recv_matching_deadline_buffers_mismatches() {
        let (tx, mut rx) = mailbox::<Msg>();
        let mut buf = TagBuffer::new(1);
        tx.send(msg(9)).unwrap();
        let soon = Instant::now() + std::time::Duration::from_millis(5);
        // Waiting for tag 5 times out, but the tag-9 message is preserved.
        assert!(matches!(
            buf.recv_matching_deadline(&mut rx, 0, Tag(5), soon),
            Err(RecvTimeoutError::TimedOut)
        ));
        assert_eq!(buf.recv_matching(&mut rx, 0, 0, Tag(9)).tag, Tag(9));
    }

    #[test]
    fn generic_over_plain_message_types() {
        // The native backend's message shape: no arrival stamp.
        let (tx, rx) = mailbox::<(Tag, Payload)>();
        tx.send((Tag(9), Payload::from_u32(vec![3]))).unwrap();
        let (tag, payload) = rx.recv().unwrap();
        assert_eq!(tag, Tag(9));
        assert_eq!(payload.into_u32(), vec![3]);
    }
}
