//! # stance-sim — deterministic heterogeneous-cluster simulator
//!
//! The STANCE paper (Kaddoura & Ranka, HPDC '96) evaluated its runtime library
//! on a cluster of SUN4 workstations connected by Ethernet, using the P4
//! message-passing environment. This crate is the substitute substrate: it runs
//! SPMD programs with one OS thread per simulated *workstation*, moves real
//! data between ranks over channels, and accounts time on a **virtual clock**
//! per rank instead of the wall clock.
//!
//! Why virtual time? The paper's experiments hinge on three quantities:
//!
//! 1. per-message setup cost (what makes the "simple" inspector strategy
//!    degrade as processors are added — Table 3),
//! 2. bytes moved across the network (what MinimizeCostRedistribution
//!    minimizes — Table 2),
//! 3. idle time induced by nonuniform and *adapting* compute capability
//!    (Tables 4 and 5).
//!
//! All three are properties of a cost model, not of any particular host
//! machine. Using a latency + bandwidth network model and a per-machine
//! speed/external-load model makes every experiment deterministic and
//! repeatable while the actual data movement (and therefore the correctness of
//! communication schedules, gathers, scatters and redistributions) is fully
//! exercised.
//!
//! The messaging contract itself — tagged send/receive, barrier,
//! collectives, compute charging — is captured by the [`Comm`] trait
//! (module [`comm`]), which this crate's [`Env`] implements with virtual
//! time and the `stance-native` crate implements with real threads and
//! wall-clock time. Runtime layers above the transport are generic over
//! `Comm`, so the same SPMD program runs on either backend.
//!
//! ## Model
//!
//! * Each rank `r` owns a monotone virtual clock `C_r` (seconds).
//! * [`Env::compute`] charges `w` *reference seconds* of work: the clock
//!   advances so that the integral of available compute capacity (machine
//!   speed × availability under external load) over the interval equals `w`.
//! * [`Env::send`] charges the sender a per-message setup, and stamps the
//!   message with its arrival time `send_completion + latency + bytes ×
//!   byte_time`.
//! * [`Env::recv`] sets `C_r ← max(C_r, arrival)`, recording the difference as
//!   idle (wait) time.
//! * Collectives ([`Env::barrier`], [`Comm::bcast_from`], …) are built from the
//!   same primitives (a shared-memory fast path is used for the barrier; its
//!   cost model is the usual `O(log p)` latency tree).
//!
//! The simulation is deterministic: all clock arithmetic depends only on
//! message causality and the [`ClusterSpec`], never on host scheduling. (The
//! optional shared-bus Ethernet arbitration is the single documented
//! exception; see [`NetworkKind::SharedBus`].)
//!
//! ## Example
//!
//! ```
//! use stance_sim::{Cluster, ClusterSpec, Comm, Payload, Tag};
//!
//! let spec = ClusterSpec::uniform(4);
//! let report = Cluster::new(spec).run(|env| {
//!     // Every rank computes for 1 reference second, then rank 0 gathers
//!     // everyone's rank id.
//!     env.compute(1.0);
//!     let gathered = env.gather_to(0, Tag(7), Payload::from_u32(vec![env.rank() as u32]));
//!     if env.rank() == 0 {
//!         let ids: Vec<u32> = gathered
//!             .unwrap()
//!             .into_iter()
//!             .flat_map(|p| p.into_u32())
//!             .collect();
//!         assert_eq!(ids, vec![0, 1, 2, 3]);
//!     }
//!     env.now()
//! });
//! assert!(report.makespan() >= 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod comm;
pub mod env;
pub mod launch;
pub mod machine;
pub mod mailbox;
pub mod network;
pub mod payload;
pub mod stats;
pub mod survivor;
pub mod tags;
pub mod time;

pub use cluster::{Cluster, ClusterSpec, RankReport, RunReport};
pub use comm::{Comm, RecvRequest, SendRequest};
pub use env::Env;
pub use machine::{LoadPhase, LoadTimeline, MachineSpec};
pub use network::{NetworkKind, NetworkSpec};
pub use payload::{Element, Payload, Tag};
pub use stats::EnvStats;
pub use survivor::SurvivorComm;
pub use time::VTime;
