//! Cluster description and the SPMD launcher.
//!
//! A [`ClusterSpec`] is the reproducible description of a computational
//! environment: one [`MachineSpec`] per workstation plus a [`NetworkSpec`].
//! [`Cluster::run`] executes an SPMD closure on one OS thread per rank and
//! returns a [`RunReport`] with every rank's result, final virtual clock and
//! accounting counters.

use std::sync::Arc;

use crate::env::{Env, Msg};
use crate::launch::{run_ranks, BarrierShared};
use crate::machine::{LoadTimeline, MachineSpec};
use crate::mailbox::mailbox_matrix;
use crate::network::{NetworkSpec, NetworkState};
use crate::stats::EnvStats;
use crate::time::VTime;

/// A complete, reproducible description of a computational environment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// One entry per workstation; index = rank.
    pub machines: Vec<MachineSpec>,
    /// The interconnect.
    pub network: NetworkSpec,
}

impl ClusterSpec {
    /// `p` identical reference workstations on default (Ethernet) network.
    pub fn uniform(p: usize) -> Self {
        assert!(p >= 1, "a cluster needs at least one machine");
        ClusterSpec {
            machines: (0..p).map(|_| MachineSpec::reference()).collect(),
            network: NetworkSpec::default(),
        }
    }

    /// Workstations with the given relative speeds.
    pub fn heterogeneous(speeds: &[f64]) -> Self {
        assert!(!speeds.is_empty(), "a cluster needs at least one machine");
        ClusterSpec {
            machines: speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect(),
            network: NetworkSpec::default(),
        }
    }

    /// The paper's §5 test-bed: `p ≤ 5` SUN4-class workstations of equal
    /// speed on 10 Mbit/s Ethernet. (Table 4's efficiencies imply the five
    /// machines were nearly identical: the sequential time is ~97.6 s on each;
    /// the efficiency loss comes from communication and residual imbalance.)
    pub fn paper_cluster(p: usize) -> Self {
        assert!((1..=20).contains(&p), "paper cluster sizes are 1..=20");
        ClusterSpec {
            machines: (0..p).map(|_| MachineSpec::reference()).collect(),
            network: NetworkSpec::ethernet_10mbit(),
        }
    }

    /// Replaces the network.
    pub fn with_network(mut self, network: NetworkSpec) -> Self {
        self.network = network;
        self
    }

    /// Attaches an external-load timeline to one machine (e.g. the paper's
    /// competing load on workstation 1).
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn with_load(mut self, rank: usize, load: LoadTimeline) -> Self {
        self.machines[rank].load = load;
        self
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines (never true for a validated spec).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Relative capabilities (speed × availability) at time `t`, normalized
    /// to sum to 1. This is what a perfectly informed partitioner would use
    /// as block weights.
    pub fn capabilities_at(&self, t: VTime) -> Vec<f64> {
        let caps: Vec<f64> = self.machines.iter().map(|m| m.capability_at(t)).collect();
        let sum: f64 = caps.iter().sum();
        caps.iter().map(|c| c / sum).collect()
    }
}

/// Outcome of one rank's SPMD execution.
#[derive(Debug)]
pub struct RankReport<R> {
    /// Value returned by the SPMD closure on this rank.
    pub result: R,
    /// The rank's virtual clock when the closure returned.
    pub clock: VTime,
    /// Time/communication accounting.
    pub stats: EnvStats,
}

/// Outcome of a whole cluster run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank outcomes, indexed by rank.
    pub ranks: Vec<RankReport<R>>,
}

impl<R> RunReport<R> {
    /// The completion time of the run: the maximum rank clock.
    pub fn makespan(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.clock.as_secs())
            .fold(0.0, f64::max)
    }

    /// Summed counters over all ranks.
    pub fn total_stats(&self) -> EnvStats {
        let mut total = EnvStats::default();
        for r in &self.ranks {
            total.merge(&r.stats);
        }
        total
    }

    /// The per-rank results, consuming the report.
    pub fn into_results(self) -> Vec<R> {
        self.ranks.into_iter().map(|r| r.result).collect()
    }

    /// Borrowed per-rank results.
    pub fn results(&self) -> impl Iterator<Item = &R> {
        self.ranks.iter().map(|r| &r.result)
    }
}

/// The SPMD launcher.
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: ClusterSpec,
}

impl Cluster {
    /// Creates a launcher for the given environment.
    ///
    /// # Panics
    /// Panics on an invalid spec (no machines, bad network parameters).
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(
            !spec.machines.is_empty(),
            "a cluster needs at least one machine"
        );
        spec.network.validate();
        Cluster { spec }
    }

    /// The environment description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Runs `f` as an SPMD program: one invocation per rank, each on its own
    /// OS thread with its own [`Env`]. Returns when every rank has finished.
    ///
    /// # Panics
    /// If any rank panics, the whole run fails with the **first** panic's
    /// original payload (message). A failing rank poisons the barrier and
    /// closes its mailboxes, so peers blocked in `recv` or `barrier` abort
    /// instead of deadlocking; their secondary panics are swallowed in
    /// favour of the original one.
    pub fn run<R, F>(&self, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&mut Env) -> R + Send + Sync,
    {
        let p = self.spec.machines.len();
        let net = Arc::new(NetworkState::new(self.spec.network.clone()));
        let barrier = BarrierShared::new(p, self.spec.network.latency);

        let envs: Vec<Env> = mailbox_matrix::<Msg>(p)
            .into_iter()
            .enumerate()
            .map(|(rank, (txs, rxs))| {
                Env::new(
                    rank,
                    p,
                    self.spec.machines[rank].clone(),
                    Arc::clone(&net),
                    txs,
                    rxs,
                    Arc::clone(&barrier),
                )
            })
            .collect();

        // The shared launch harness owns the panic protocol (first panic
        // wins, barrier poisoning, mailbox closure via context drop).
        let ranks = run_ranks(
            "rank-",
            envs,
            || barrier.poison(),
            &f,
            |env, result| {
                let (clock, stats) = env.into_parts();
                RankReport {
                    result,
                    clock,
                    stats,
                }
            },
        );
        RunReport { ranks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::payload::{Payload, Tag};

    #[test]
    fn single_rank_compute_only() {
        let report = Cluster::new(ClusterSpec::uniform(1)).run(|env| {
            env.compute(2.5);
            env.now().as_secs()
        });
        assert_eq!(report.ranks.len(), 1);
        assert!((report.makespan() - 2.5).abs() < 1e-12);
        assert!((report.ranks[0].stats.compute_time - 2.5).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_speeds_scale_clocks() {
        let spec = ClusterSpec::heterogeneous(&[1.0, 2.0, 0.5]);
        let report = Cluster::new(spec).run(|env| {
            env.compute(1.0);
            env.now().as_secs()
        });
        let clocks: Vec<f64> = report.into_results();
        assert!((clocks[0] - 1.0).abs() < 1e-12);
        assert!((clocks[1] - 0.5).abs() < 1e-12);
        assert!((clocks[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn send_recv_moves_data_and_time() {
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec {
            send_setup: 0.1,
            latency: 0.2,
            byte_time: 0.0,
            recv_overhead: 0.0,
            multicast: false,
            kind: crate::network::NetworkKind::PointToPoint,
        });
        let report = Cluster::new(spec).run(|env| {
            if env.rank() == 0 {
                env.compute(1.0);
                env.send(1, Tag(1), Payload::from_f64(vec![42.0]));
                env.now().as_secs()
            } else {
                let data = env.recv(0, Tag(1)).into_f64();
                assert_eq!(data, vec![42.0]);
                env.now().as_secs()
            }
        });
        let clocks: Vec<f64> = report.into_results();
        // Sender: 1.0 compute + 0.1 setup.
        assert!((clocks[0] - 1.1).abs() < 1e-12);
        // Receiver: arrival at 1.1 + 0.2 latency.
        assert!((clocks[1] - 1.3).abs() < 1e-12);
    }

    #[test]
    fn tag_mismatch_is_buffered() {
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            if env.rank() == 0 {
                env.send(1, Tag(10), Payload::from_u32(vec![10]));
                env.send(1, Tag(20), Payload::from_u32(vec![20]));
            } else {
                // Receive out of order: tag 20 first.
                assert_eq!(env.recv(0, Tag(20)).into_u32(), vec![20]);
                assert_eq!(env.recv(0, Tag(10)).into_u32(), vec![10]);
            }
        });
    }

    #[test]
    fn self_send_works() {
        let spec = ClusterSpec::uniform(1).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            env.send(0, Tag(3), Payload::from_u64(vec![7]));
            assert_eq!(env.recv(0, Tag(3)).into_u64(), vec![7]);
        });
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            env.compute(env.rank() as f64); // ranks finish at 0,1,2,3
            env.barrier();
            env.now().as_secs()
        });
        for clock in report.results() {
            assert!((clock - 3.0).abs() < 1e-12, "clock {clock} != 3.0");
        }
    }

    #[test]
    fn barrier_cost_charged_with_latency() {
        let mut net = NetworkSpec::zero_cost();
        net.latency = 0.5;
        let spec = ClusterSpec::uniform(4).with_network(net);
        let report = Cluster::new(spec).run(|env| {
            env.barrier();
            env.now().as_secs()
        });
        // ceil(log2(4)) = 2 rounds × 2 × 0.5 latency = 2.0.
        for clock in report.results() {
            assert!((clock - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn repeated_barriers() {
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            for i in 0..50 {
                if env.rank() == i % 3 {
                    env.compute(0.01);
                }
                env.barrier();
            }
            env.now().as_secs()
        });
        let clocks: Vec<f64> = report.into_results();
        for &c in &clocks {
            assert!((c - 0.5).abs() < 1e-9, "clock {c}");
        }
    }

    #[test]
    fn bcast_delivers_everywhere() {
        let spec = ClusterSpec::uniform(5).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let payload = if env.rank() == 2 {
                Payload::from_f64(vec![3.25])
            } else {
                Payload::Empty
            };
            env.bcast_from(2, Tag(9), payload).into_f64()
        });
        for data in report.results() {
            assert_eq!(data, &vec![3.25]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let mine = Payload::from_u32(vec![env.rank() as u32 * 10]);
            env.gather_to(0, Tag(4), mine).map(|v| {
                v.into_iter()
                    .flat_map(super::super::payload::Payload::into_u32)
                    .collect::<Vec<_>>()
            })
        });
        let results: Vec<_> = report.into_results();
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert_eq!(results[1], None);
    }

    #[test]
    fn allgather_and_allreduce() {
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let all = env.allgather(Tag(5), Payload::from_u32(vec![env.rank() as u32]));
            let ids: Vec<u32> = all
                .into_iter()
                .flat_map(super::super::payload::Payload::into_u32)
                .collect();
            assert_eq!(ids, vec![0, 1, 2]);
            env.allreduce_f64(Tag(6), (env.rank() + 1) as f64, |a, b| a + b)
        });
        for total in report.results() {
            assert_eq!(*total, 6.0);
        }
    }

    #[test]
    fn multicast_single_setup_when_supported() {
        let net = NetworkSpec {
            send_setup: 1.0,
            latency: 0.0,
            byte_time: 0.0,
            recv_overhead: 0.0,
            multicast: true,
            kind: crate::network::NetworkKind::PointToPoint,
        };
        let spec = ClusterSpec::uniform(4).with_network(net);
        let report = Cluster::new(spec).run(|env| {
            if env.rank() == 0 {
                env.multicast(&[1, 2, 3], Tag(1), Payload::Empty);
            } else {
                env.recv(0, Tag(1));
            }
            env.now().as_secs()
        });
        let clocks: Vec<f64> = report.into_results();
        // One setup only: sender finishes at 1.0, not 3.0.
        assert!((clocks[0] - 1.0).abs() < 1e-12);
        for &c in &clocks[1..] {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn multicast_fallback_loops_sends() {
        let net = NetworkSpec {
            send_setup: 1.0,
            latency: 0.0,
            byte_time: 0.0,
            recv_overhead: 0.0,
            multicast: false,
            kind: crate::network::NetworkKind::PointToPoint,
        };
        let spec = ClusterSpec::uniform(4).with_network(net);
        let report = Cluster::new(spec).run(|env| {
            if env.rank() == 0 {
                env.multicast(&[1, 2, 3], Tag(1), Payload::Empty);
            } else {
                env.recv(0, Tag(1));
            }
            env.now().as_secs()
        });
        let clocks: Vec<f64> = report.into_results();
        assert!((clocks[0] - 3.0).abs() < 1e-12);
        // Last destination sees the third setup completion.
        assert!((clocks[3] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exchange_round_trip() {
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            // Ring: send rank to (rank+1) % 3, receive from (rank+2) % 3.
            let next = (env.rank() + 1) % 3;
            let prev = (env.rank() + 2) % 3;
            let got = env.exchange(
                vec![(next, Payload::from_u32(vec![env.rank() as u32]))],
                &[prev],
                Tag(2),
            );
            got[0].1.clone().into_u32()[0]
        });
        let results: Vec<u32> = report.into_results();
        assert_eq!(results, vec![2, 0, 1]);
    }

    #[test]
    fn wait_time_accounted() {
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            if env.rank() == 0 {
                env.compute(5.0);
                env.send(1, Tag(1), Payload::Empty);
                0.0
            } else {
                env.recv(0, Tag(1));
                env.stats().wait_time
            }
        });
        let waits: Vec<f64> = report.into_results();
        assert!((waits[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn load_timeline_slows_rank() {
        let spec = ClusterSpec::uniform(2)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(0.5));
        let report = Cluster::new(spec).run(|env| {
            env.compute(2.0);
            env.now().as_secs()
        });
        let clocks: Vec<f64> = report.into_results();
        assert!((clocks[0] - 4.0).abs() < 1e-12);
        assert!((clocks[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capabilities_normalized() {
        let spec = ClusterSpec::heterogeneous(&[1.0, 3.0]);
        let caps = spec.capabilities_at(VTime::ZERO);
        assert!((caps[0] - 0.25).abs() < 1e-12);
        assert!((caps[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn report_total_stats() {
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            if env.rank() == 0 {
                env.send(1, Tag(1), Payload::from_f64(vec![0.0; 16]));
            } else {
                env.recv(0, Tag(1));
            }
        });
        let total = report.total_stats();
        assert_eq!(total.messages_sent, 1);
        assert_eq!(total.bytes_sent, 128);
        assert_eq!(total.messages_received, 1);
        assert_eq!(total.bytes_received, 128);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            if env.rank() == 1 {
                panic!("boom");
            }
        });
    }

    /// A rank that panics while its peers sit in `barrier` must fail the
    /// whole run with the *original* panic message — before the poisoning
    /// fix this deadlocked, and before first-panic recording it could
    /// surface a secondary "peer rank panicked" message instead.
    #[test]
    #[should_panic(expected = "original boom")]
    fn rank_panic_unblocks_peers_in_barrier() {
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            if env.rank() == 2 {
                // Give peers time to actually block inside the barrier.
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("original boom");
            }
            env.barrier();
        });
    }

    /// Same for peers blocked in `recv`: the failing rank's mailboxes close
    /// and the run surfaces the original message, not the receiver's
    /// secondary "sender exited" panic.
    #[test]
    #[should_panic(expected = "original boom")]
    fn rank_panic_unblocks_peers_in_recv() {
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            if env.rank() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("original boom");
            }
            env.recv(1, Tag(1));
        });
    }

    #[test]
    fn determinism_across_runs() {
        let spec = ClusterSpec::paper_cluster(4);
        let run = || {
            Cluster::new(spec.clone()).run(|env| {
                // A non-trivial communication pattern.
                for step in 0..10u32 {
                    env.compute(0.01 * f64::from(env.rank() as u32 + 1));
                    let next = (env.rank() + 1) % env.size();
                    let prev = (env.rank() + env.size() - 1) % env.size();
                    env.send(next, Tag(step), Payload::from_f64(vec![0.0; 100]));
                    env.recv(prev, Tag(step));
                    env.barrier();
                }
                env.now().as_secs()
            })
        };
        let a: Vec<f64> = run().into_results();
        let b: Vec<f64> = run().into_results();
        assert_eq!(a, b, "virtual clocks must be bit-identical across runs");
    }
}
