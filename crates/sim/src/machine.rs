//! Machine model: relative speed plus a timeline of external competing load.
//!
//! The paper distinguishes *static*, *dynamic* and *adaptive* resources (§1).
//! We model a workstation by
//!
//! * a **relative speed** — how fast it executes one reference second of work
//!   when fully available (nonuniformity), and
//! * a **load timeline** — a piecewise-constant function of virtual time
//!   giving the fraction of the machine available to our SPMD process
//!   (adaptivity). A constant competing CPU-bound process, as in the paper's
//!   §5 adaptive experiment, gives availability `1/(1+k)` for `k` competitors.
//!
//! Charging `w` reference seconds of work starting at time `t` advances the
//! clock to the unique `t' ≥ t` with
//! `∫ₜ^t' speed · avail(τ) dτ = w`.

use crate::time::VTime;

/// One piece of the piecewise-constant availability function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPhase {
    /// Virtual time at which this phase begins.
    pub start: f64,
    /// Fraction of the machine available to the application in `(0, 1]`.
    pub available: f64,
}

/// Piecewise-constant availability over virtual time.
///
/// An empty timeline means the machine is fully available forever.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadTimeline {
    phases: Vec<LoadPhase>,
}

impl LoadTimeline {
    /// Fully available at all times.
    pub fn always_available() -> Self {
        LoadTimeline { phases: Vec::new() }
    }

    /// A constant availability for the whole run.
    ///
    /// `LoadTimeline::constant(1.0 / 3.0)` models the paper's adaptive
    /// experiment where a competing load pinned one workstation at a third of
    /// its capacity.
    pub fn constant(available: f64) -> Self {
        Self::from_phases(vec![LoadPhase {
            start: 0.0,
            available,
        }])
    }

    /// Builds a timeline from phases.
    ///
    /// # Panics
    /// Panics if the phases are not sorted by strictly increasing start time,
    /// if the first phase does not start at 0, or if any availability is
    /// outside `(0, 1]`. (Zero availability would stall virtual time forever;
    /// model "machine temporarily withdrawn" with a small epsilon instead.)
    pub fn from_phases(phases: Vec<LoadPhase>) -> Self {
        if let Some(first) = phases.first() {
            assert!(
                first.start == 0.0,
                "first load phase must start at t=0, got {}",
                first.start
            );
        }
        for w in phases.windows(2) {
            assert!(
                w[0].start < w[1].start,
                "load phases must have strictly increasing start times"
            );
        }
        for p in &phases {
            assert!(
                p.available > 0.0 && p.available <= 1.0,
                "availability must be in (0, 1], got {}",
                p.available
            );
        }
        LoadTimeline { phases }
    }

    /// `k` competing CPU-bound processes arriving at `start` and departing at
    /// `end` (fair-share scheduling: availability drops to `1/(1+k)`).
    pub fn competing_load(start: f64, end: f64, competitors: u32) -> Self {
        assert!(start >= 0.0 && end > start, "invalid competing-load window");
        let avail = 1.0 / (1.0 + f64::from(competitors));
        let mut phases = Vec::with_capacity(3);
        phases.push(LoadPhase {
            start: 0.0,
            available: 1.0,
        });
        if start == 0.0 {
            phases.clear();
            phases.push(LoadPhase {
                start: 0.0,
                available: avail,
            });
        } else {
            phases.push(LoadPhase {
                start,
                available: avail,
            });
        }
        if end.is_finite() {
            phases.push(LoadPhase {
                start: end,
                available: 1.0,
            });
        }
        Self::from_phases(phases)
    }

    /// Availability at time `t`.
    pub fn available_at(&self, t: VTime) -> f64 {
        let t = t.as_secs();
        let mut avail = 1.0;
        for p in &self.phases {
            if p.start <= t {
                avail = p.available;
            } else {
                break;
            }
        }
        avail
    }

    /// Index of the phase active at `t` (or `None` before any phase / when
    /// empty).
    fn phase_index_at(&self, t: f64) -> Option<usize> {
        // Phases are sorted by start; find the last with start <= t.
        match self.phases.binary_search_by(|p| {
            p.start
                .partial_cmp(&t)
                .expect("load phase start is never NaN")
        }) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// Advances from `t0`, consuming `demand` seconds of *fully available*
    /// machine time, and returns the completion time.
    pub fn advance(&self, t0: VTime, demand: f64) -> VTime {
        assert!(
            demand.is_finite() && demand >= 0.0,
            "compute demand must be finite and non-negative, got {demand}"
        );
        if demand == 0.0 {
            return t0;
        }
        if self.phases.is_empty() {
            return t0 + demand;
        }
        let mut t = t0.as_secs();
        let mut remaining = demand;
        let mut idx = self.phase_index_at(t);
        loop {
            let (avail, seg_end) = match idx {
                None => (1.0, self.phases[0].start),
                Some(i) => {
                    let avail = self.phases[i].available;
                    let seg_end = self.phases.get(i + 1).map_or(f64::INFINITY, |p| p.start);
                    (avail, seg_end)
                }
            };
            if seg_end.is_infinite() {
                return VTime::from_secs(t + remaining / avail);
            }
            let capacity = (seg_end - t) * avail;
            if remaining <= capacity {
                return VTime::from_secs(t + remaining / avail);
            }
            remaining -= capacity;
            t = seg_end;
            idx = Some(idx.map_or(0, |i| i + 1));
        }
    }
}

/// A simulated workstation.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Relative speed: reference seconds of work completed per second of
    /// fully-available machine time. 1.0 is the reference workstation.
    pub speed: f64,
    /// External-load availability over time.
    pub load: LoadTimeline,
}

impl MachineSpec {
    /// A reference workstation: speed 1.0, always fully available.
    pub fn reference() -> Self {
        MachineSpec {
            speed: 1.0,
            load: LoadTimeline::always_available(),
        }
    }

    /// A workstation with the given relative speed, always fully available.
    ///
    /// # Panics
    /// Panics unless `speed > 0`.
    pub fn with_speed(speed: f64) -> Self {
        assert!(speed > 0.0, "machine speed must be positive, got {speed}");
        MachineSpec {
            speed,
            load: LoadTimeline::always_available(),
        }
    }

    /// Attaches a load timeline.
    pub fn with_load(mut self, load: LoadTimeline) -> Self {
        self.load = load;
        self
    }

    /// Completion time of `work` reference seconds started at `t0`.
    pub fn finish_time(&self, t0: VTime, work: f64) -> VTime {
        assert!(
            work.is_finite() && work >= 0.0,
            "work must be finite and non-negative, got {work}"
        );
        self.load.advance(t0, work / self.speed)
    }

    /// Effective capability (reference seconds of work per second of virtual
    /// time) at time `t`: `speed × availability`.
    pub fn capability_at(&self, t: VTime) -> f64 {
        self.speed * self.load.available_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> VTime {
        VTime::from_secs(s)
    }

    #[test]
    fn empty_timeline_is_fully_available() {
        let tl = LoadTimeline::always_available();
        assert_eq!(tl.available_at(t(5.0)), 1.0);
        assert_eq!(tl.advance(t(2.0), 3.0), t(5.0));
    }

    #[test]
    fn constant_availability_scales_time() {
        let tl = LoadTimeline::constant(0.5);
        assert_eq!(tl.available_at(t(0.0)), 0.5);
        // 3 seconds of demand at half availability takes 6 seconds.
        assert_eq!(tl.advance(t(1.0), 3.0), t(7.0));
    }

    #[test]
    fn competing_load_window() {
        // One competitor between t=10 and t=20: availability 1, then 1/2, then 1.
        let tl = LoadTimeline::competing_load(10.0, 20.0, 1);
        assert_eq!(tl.available_at(t(0.0)), 1.0);
        assert_eq!(tl.available_at(t(10.0)), 0.5);
        assert_eq!(tl.available_at(t(19.9)), 0.5);
        assert_eq!(tl.available_at(t(20.0)), 1.0);
        // Start at t=8 with 6s demand: 2s at full, then 4s of demand at 1/2
        // availability = 8s of wall, finishing at t=18.
        assert_eq!(tl.advance(t(8.0), 6.0), t(18.0));
        // Demand that spills past the window: start t=8, demand 9s.
        // 2s full (2 done), 10s at half (5 done), remaining 2 at full → t=22.
        assert_eq!(tl.advance(t(8.0), 9.0), t(22.0));
    }

    #[test]
    fn competing_load_from_zero() {
        let tl = LoadTimeline::competing_load(0.0, f64::INFINITY, 2);
        assert!((tl.available_at(t(0.0)) - 1.0 / 3.0).abs() < 1e-12);
        let end = tl.advance(t(0.0), 1.0);
        assert!((end.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn advance_zero_demand_is_identity() {
        let tl = LoadTimeline::constant(0.25);
        assert_eq!(tl.advance(t(3.0), 0.0), t(3.0));
    }

    #[test]
    fn advance_starting_mid_phase() {
        let tl = LoadTimeline::from_phases(vec![
            LoadPhase {
                start: 0.0,
                available: 1.0,
            },
            LoadPhase {
                start: 4.0,
                available: 0.25,
            },
        ]);
        // Start inside the second phase.
        assert_eq!(tl.advance(t(8.0), 1.0), t(12.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_phases_rejected() {
        let _ = LoadTimeline::from_phases(vec![
            LoadPhase {
                start: 0.0,
                available: 1.0,
            },
            LoadPhase {
                start: 0.0,
                available: 0.5,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "availability must be in (0, 1]")]
    fn zero_availability_rejected() {
        let _ = LoadTimeline::constant(0.0);
    }

    #[test]
    #[should_panic(expected = "must start at t=0")]
    fn first_phase_must_start_at_zero() {
        let _ = LoadTimeline::from_phases(vec![LoadPhase {
            start: 1.0,
            available: 1.0,
        }]);
    }

    #[test]
    fn machine_speed_scales_work() {
        let m = MachineSpec::with_speed(2.0);
        assert_eq!(m.finish_time(t(0.0), 4.0), t(2.0));
        let slow = MachineSpec::with_speed(0.5);
        assert_eq!(slow.finish_time(t(0.0), 4.0), t(8.0));
    }

    #[test]
    fn machine_capability_combines_speed_and_load() {
        let m = MachineSpec::with_speed(2.0).with_load(LoadTimeline::constant(0.5));
        assert_eq!(m.capability_at(t(0.0)), 1.0);
        assert_eq!(m.finish_time(t(0.0), 2.0), t(2.0));
    }

    #[test]
    fn paper_adaptive_scenario_triples_time() {
        // §5: constant competing load on workstation 1 tripled the sequential
        // time (97.61s → 290.93s), i.e. availability ≈ 1/3 (2 competitors).
        let m =
            MachineSpec::reference().with_load(LoadTimeline::competing_load(0.0, f64::INFINITY, 2));
        let end = m.finish_time(t(0.0), 97.61);
        assert!((end.as_secs() - 292.83).abs() < 1e-9);
    }
}
