//! Property tests for the cluster simulator: ordering, delivery and clock
//! invariants under randomized workloads.

use proptest::prelude::*;
use stance_sim::{Cluster, ClusterSpec, Comm, NetworkSpec, Payload, Tag};

proptest! {
    // Each case spins up real threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIFO per channel: messages between a fixed pair with the same tag
    /// arrive in send order, with non-decreasing arrival clocks.
    #[test]
    fn per_channel_fifo_and_monotone_arrivals(
        values in proptest::collection::vec(0u32..1000, 1..40),
        latency in 0.0f64..0.01,
    ) {
        let mut net = NetworkSpec::zero_cost();
        net.latency = latency;
        net.send_setup = latency / 2.0;
        let spec = ClusterSpec::uniform(2).with_network(net);
        let sent = values.clone();
        let report = Cluster::new(spec).run(move |env| {
            if env.rank() == 0 {
                for &v in &sent {
                    env.send(1, Tag(9), Payload::from_u32(vec![v]));
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                let mut clocks = Vec::new();
                for _ in 0..sent.len() {
                    got.push(env.recv(0, Tag(9)).into_u32()[0]);
                    clocks.push(env.now().as_secs());
                }
                assert!(clocks.windows(2).all(|w| w[0] <= w[1]), "clock regressed");
                got
            }
        });
        let results: Vec<Vec<u32>> = report.into_results();
        prop_assert_eq!(&results[1], &values);
    }

    /// Allgather returns the same, rank-ordered vector everywhere.
    #[test]
    fn allgather_consistent(p in 2usize..5, seed in 0u64..1000) {
        let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(move |env| {
            let mine = (seed ^ env.rank() as u64) as u32;
            let all = env.allgather(Tag(1), Payload::from_u32(vec![mine]));
            all.into_iter().map(|pl| pl.into_u32()[0]).collect::<Vec<u32>>()
        });
        let results: Vec<Vec<u32>> = report.into_results();
        for r in 1..p {
            prop_assert_eq!(&results[0], &results[r]);
        }
        for (rank, &v) in results[0].iter().enumerate() {
            prop_assert_eq!(v, (seed ^ rank as u64) as u32);
        }
    }

    /// Exchange delivers exactly the payload each sender addressed to each
    /// receiver, for a random traffic matrix.
    #[test]
    fn exchange_delivers_traffic_matrix(
        p in 2usize..5,
        matrix_seed in 0u64..500,
    ) {
        let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(move |env| {
            let me = env.rank();
            // Everyone sends to everyone (value encodes the pair).
            let sends: Vec<(usize, Payload)> = (0..p)
                .map(|dst| {
                    let value = (matrix_seed as u32)
                        .wrapping_add((me * 31 + dst) as u32);
                    (dst, Payload::from_u32(vec![value]))
                })
                .collect();
            let recv_from: Vec<usize> = (0..p).collect();
            let got = env.exchange(sends, &recv_from, Tag(2));
            got.into_iter()
                .map(|(src, pl)| (src, pl.into_u32()[0]))
                .collect::<Vec<_>>()
        });
        for (me, got) in report.into_results().into_iter().enumerate() {
            for (src, value) in got {
                let expected = (matrix_seed as u32).wrapping_add((src * 31 + me) as u32);
                prop_assert_eq!(value, expected, "pair {} -> {}", src, me);
            }
        }
    }

    /// Compute charges exactly work/speed on an unloaded machine, for any
    /// split of the work into chunks.
    #[test]
    fn compute_chunking_invariant(
        chunks in proptest::collection::vec(0.0f64..2.0, 1..20),
        speed in 0.1f64..4.0,
    ) {
        let spec = ClusterSpec::heterogeneous(&[speed]);
        let total: f64 = chunks.iter().sum();
        let report = Cluster::new(spec).run(move |env| {
            for &c in &chunks {
                env.compute(c);
            }
            env.now().as_secs()
        });
        let clock = report.into_results()[0];
        prop_assert!((clock - total / speed).abs() < 1e-9 * (1.0 + total),
            "clock {} vs expected {}", clock, total / speed);
    }

    /// Barrier release time equals the max participant clock plus the fixed
    /// barrier cost, regardless of which rank is slow.
    #[test]
    fn barrier_takes_max_clock(p in 2usize..5, slow in 0usize..5, work in 0.0f64..3.0) {
        let slow = slow % p;
        let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(move |env| {
            if env.rank() == slow {
                env.compute(work);
            }
            env.barrier();
            env.now().as_secs()
        });
        let clocks: Vec<f64> = report.into_results();
        for &c in &clocks {
            prop_assert!((c - work).abs() < 1e-12, "clock {} vs slowest {}", c, work);
        }
    }
}

/// Deterministic (non-randomized) checks of the nonblocking primitives'
/// virtual-time semantics: a posted receive completes at
/// `max(now, modelled arrival)`, so compute between the post and the wait
/// hides the transfer.
mod split_phase_virtual_time {
    use super::*;

    /// Network with a pure 10 ms wire latency and no CPU costs, so clock
    /// arithmetic is exact.
    fn latency_net() -> NetworkSpec {
        let mut net = NetworkSpec::zero_cost();
        net.latency = 10.0e-3;
        net
    }

    /// Receiver A does recv-then-compute (no overlap): latency + work.
    /// Receiver B does irecv / compute / wait (split phase): max(latency,
    /// work). Same messages, same work — the overlap is purely a property
    /// of the posting order, and the simulator's clock shows it.
    #[test]
    fn compute_between_post_and_wait_hides_the_transfer() {
        let work = 4.0e-3; // less than the 10 ms latency: fully hidden
        let run = |overlap: bool| {
            let spec = ClusterSpec::uniform(2).with_network(latency_net());
            let report = Cluster::new(spec).run(move |env| {
                if env.rank() == 0 {
                    env.send(1, Tag(1), Payload::from_u32(vec![7]));
                    0.0
                } else {
                    if overlap {
                        let req = env.irecv(0, Tag(1));
                        env.compute(work);
                        assert_eq!(env.wait_recv(req).into_u32(), vec![7]);
                    } else {
                        assert_eq!(env.recv(0, Tag(1)).into_u32(), vec![7]);
                        env.compute(work);
                    }
                    env.now_secs()
                }
            });
            report.into_results()[1]
        };
        let sync = run(false);
        let split = run(true);
        assert!((sync - (10.0e-3 + work)).abs() < 1e-12, "sync clock {sync}");
        // Work shorter than the latency is hidden entirely: the wait
        // completes at the arrival stamp.
        assert!((split - 10.0e-3).abs() < 1e-12, "split clock {split}");
    }

    /// When the compute is longer than the transfer, the wait is free: the
    /// clock is compute-bound and communication costs nothing.
    #[test]
    fn long_compute_makes_the_wait_free() {
        let work = 50.0e-3; // dwarfs the 10 ms latency
        let spec = ClusterSpec::uniform(2).with_network(latency_net());
        let report = Cluster::new(spec).run(move |env| {
            if env.rank() == 0 {
                env.send(1, Tag(2), Payload::from_u32(vec![9]));
                0.0
            } else {
                let req = env.irecv(0, Tag(2));
                env.compute(work);
                assert!(env.test_recv(&req), "message arrived during compute");
                let t_before_wait = env.now_secs();
                assert_eq!(env.wait_recv(req).into_u32(), vec![9]);
                assert_eq!(env.now_secs(), t_before_wait, "wait must cost nothing");
                env.now_secs()
            }
        });
        assert!((report.into_results()[1] - work).abs() < 1e-12);
    }

    /// `test_recv` reports virtual-time readiness: false while the clock
    /// trails the modelled arrival, true once compute has advanced past
    /// it — and it never consumes the message or moves the clock.
    #[test]
    fn test_recv_tracks_the_virtual_clock() {
        let spec = ClusterSpec::uniform(2).with_network(latency_net());
        Cluster::new(spec).run(|env| {
            if env.rank() == 0 {
                env.send(1, Tag(3), Payload::from_u32(vec![1]));
            } else {
                let req = env.irecv(0, Tag(3));
                assert!(!env.test_recv(&req), "arrival is 10 ms in the future");
                let t = env.now_secs();
                assert_eq!(env.now_secs(), t, "probe must not advance the clock");
                env.compute(20.0e-3);
                assert!(env.test_recv(&req), "clock has passed the arrival");
                assert_eq!(env.wait_recv(req).into_u32(), vec![1]);
            }
        });
    }
}
