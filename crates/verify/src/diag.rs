//! Structured findings: what went wrong, where, and between whom.

use std::fmt;

use stance_sim::Tag;

/// The kind of contract violation a check found. Each variant corresponds
/// to one invariant of the SPMD contract — the static audit produces the
/// schedule/plan kinds, the trace analyzer the protocol kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    /// The partition intervals leave part of the index space unowned.
    IntervalGap,
    /// Two partition intervals claim the same indices.
    IntervalOverlap,
    /// Rank p's send list to q and q's receive list from p differ.
    SendRecvAsymmetry,
    /// One global element is fetched as a ghost from two different peers.
    DoubleOwnedGhost,
    /// A receive segment lists a global its peer does not own.
    GhostFromNonOwner,
    /// The interior/boundary run classification disagrees with the ghost
    /// set the schedule actually fetches.
    ClassificationMismatch,
    /// A redistribution's kept copy + receives do not exactly tile the
    /// new interval.
    RedistributionTile,
    /// The blocking send/receive order contains a cross-rank wait-for
    /// cycle: every rank on the cycle is blocked in a receive whose
    /// matching send comes later in its peer's program order.
    DeadlockCycle,
    /// A send no receive ever consumed.
    UnmatchedSend,
    /// A receive on a (source, tag) stream no in-flight message could
    /// satisfy.
    PhantomRecv,
    /// A matched send/receive pair whose payload kind or byte size
    /// changed in flight.
    PayloadMismatch,
    /// A posted `SendRequest` that was never waited.
    LeakedSendRequest,
    /// A posted `RecvRequest` that was never waited (or a wait with no
    /// matching post).
    LeakedRecvRequest,
    /// Ranks disagree on how many barriers the run performed.
    BarrierArity,
    /// A matched pair where the receive completed in an *earlier* barrier
    /// epoch than its send was posted in — physically impossible, so the
    /// trace itself is inconsistent.
    EpochCrossing,
    /// Application traffic on a reserved tag the runtime does not use:
    /// the tag is in the reserved band (`Tag::is_reserved`) but is not a
    /// registered runtime tag (`stance_sim::tags`), so it can silently
    /// collide with a future runtime protocol.
    ReservedTagMisuse,
    /// A stage graph's writer→reader dependencies contain a cycle, so no
    /// topological stage schedule exists.
    StageCycle,
    /// A stage reads or writes a field name that was never registered in
    /// the graph's field set.
    UndeclaredFieldAccess,
    /// Two stages in one graph share a name, making the schedule and its
    /// diagnostics ambiguous.
    DuplicateStageName,
    /// Two fields in one registry share a name, so accesses cannot be
    /// resolved to a unique array.
    DuplicateFieldName,
}

impl DiagnosticKind {
    /// Short stable label, used in `Display` and log grepping.
    pub fn label(self) -> &'static str {
        match self {
            DiagnosticKind::IntervalGap => "interval-gap",
            DiagnosticKind::IntervalOverlap => "interval-overlap",
            DiagnosticKind::SendRecvAsymmetry => "send-recv-asymmetry",
            DiagnosticKind::DoubleOwnedGhost => "double-owned-ghost",
            DiagnosticKind::GhostFromNonOwner => "ghost-from-non-owner",
            DiagnosticKind::ClassificationMismatch => "classification-mismatch",
            DiagnosticKind::RedistributionTile => "redistribution-tile",
            DiagnosticKind::DeadlockCycle => "deadlock-cycle",
            DiagnosticKind::UnmatchedSend => "unmatched-send",
            DiagnosticKind::PhantomRecv => "phantom-recv",
            DiagnosticKind::PayloadMismatch => "payload-mismatch",
            DiagnosticKind::LeakedSendRequest => "leaked-send-request",
            DiagnosticKind::LeakedRecvRequest => "leaked-recv-request",
            DiagnosticKind::BarrierArity => "barrier-arity",
            DiagnosticKind::EpochCrossing => "epoch-crossing",
            DiagnosticKind::ReservedTagMisuse => "reserved-tag-misuse",
            DiagnosticKind::StageCycle => "stage-cycle",
            DiagnosticKind::UndeclaredFieldAccess => "undeclared-field-access",
            DiagnosticKind::DuplicateStageName => "duplicate-stage-name",
            DiagnosticKind::DuplicateFieldName => "duplicate-field-name",
        }
    }
}

/// One verified contract violation: the invariant broken, the rank it was
/// observed on, the peer/tag it involves (when meaningful), and a
/// human-readable detail naming the concrete indices or intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which invariant was broken.
    pub kind: DiagnosticKind,
    /// The rank the violation was observed on.
    pub rank: usize,
    /// The other rank involved, if the violation is about a pair.
    pub peer: Option<usize>,
    /// The message tag involved, if the violation is about a stream.
    pub tag: Option<Tag>,
    /// Concrete detail: the indices, intervals, or counts that disagree.
    pub detail: String,
}

impl Diagnostic {
    /// A diagnostic observed on `rank` with no peer or tag context.
    pub fn new(kind: DiagnosticKind, rank: usize, detail: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            rank,
            peer: None,
            tag: None,
            detail: detail.into(),
        }
    }

    /// Attaches the peer rank.
    pub fn with_peer(mut self, peer: usize) -> Self {
        self.peer = Some(peer);
        self
    }

    /// Attaches the message tag.
    pub fn with_tag(mut self, tag: Tag) -> Self {
        self.tag = Some(tag);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] rank {}", self.kind.label(), self.rank)?;
        if let Some(peer) = self.peer {
            write!(f, " <-> rank {peer}")?;
        }
        if let Some(tag) = self.tag {
            write!(f, " tag {}", tag.0)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Formats a batch of diagnostics one per line (the panic message of a
/// failed verification pass).
pub(crate) fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_rank_peer_and_tag() {
        let d = Diagnostic::new(DiagnosticKind::UnmatchedSend, 2, "3 sends never received")
            .with_peer(5)
            .with_tag(Tag(7));
        let s = d.to_string();
        assert!(s.contains("unmatched-send"), "{s}");
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("rank 5"), "{s}");
        assert!(s.contains("tag 7"), "{s}");
        assert!(s.contains("3 sends"), "{s}");
    }
}
