//! Deterministic fault injection: a [`Comm`] wrapper that kills, wedges,
//! or stalls a rank at a planned operation count.
//!
//! [`FaultyComm`] is [`CheckedComm`](crate::CheckedComm)'s destructive
//! sibling: where the checker records the protocol, the injector breaks
//! it — on purpose, at a *reproducible* point. Every communication
//! operation the wrapped rank performs advances an operation counter;
//! when the counter crosses a planned [`FaultEvent`] the fault fires:
//!
//! * [`FaultKind::Kill`] — the rank dies abruptly: an [`InjectedFault`]
//!   panic unwinds out of the communication call. The SPMD closure
//!   catches it with [`catch_fault`] and returns early, which closes the
//!   rank's mailboxes — the *cooperative death* peers then observe as an
//!   instant `Disconnected` on [`Comm::recv_deadline`] / [`Comm::post`].
//! * [`FaultKind::Wedge`] — the rank goes silent but stays alive: the
//!   same panic fires, but the catcher is expected to *hold its comm
//!   handle open* (sleep past the detection window) before returning, so
//!   peers see timeouts rather than a closed mailbox — the hard
//!   detection case.
//! * [`FaultKind::Stall`] — the rank survives but every subsequent
//!   operation is delayed by the configured time (charged to the virtual
//!   clock on the simulator, slept in wall time on native threads). No
//!   recovery triggers; the run just degrades.
//!
//! The plan is pure data ([`FaultPlan`]), keyed by rank and operation
//! count — not wall time — so the same plan reproduces the same fault at
//! the same protocol point on both backends, every run.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use stance_sim::{Comm, Payload, RecvRequest, SendRequest, Tag};

/// What an injected fault does to the victim rank. See the [module
/// docs](self) for the observable consequences of each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Abrupt death: unwind out of the communication call; the catcher
    /// returns early and the rank's mailboxes close.
    Kill,
    /// Silent wedge: unwind out of the call, but the catcher keeps the
    /// rank alive (mailboxes open) past the detection window.
    Wedge,
    /// Slowdown: every operation from the trigger on is delayed by this
    /// many seconds.
    Stall {
        /// Per-operation delay, in seconds.
        delay_secs: f64,
    },
}

/// One planned fault: `kind` fires on `rank`'s first communication
/// operation *after* it has completed `after_ops` of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// The victim rank (in the wrapped comm's rank space).
    pub rank: usize,
    /// How many operations the victim completes before the fault fires.
    pub after_ops: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// A reproducible fault schedule: a list of [`FaultEvent`]s plus the seed
/// that generated it (zero for hand-built plans). Pure data — cloneable,
/// comparable, and identical in effect on both backends.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no fault ever fires. A [`FaultyComm`] driven by
    /// this plan is a pure pass-through (and allocation-free per
    /// operation — pinned by `tests/alloc_free.rs`).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Plan that kills `rank` after it completes `after_ops` operations.
    pub fn kill(rank: usize, after_ops: u64) -> Self {
        FaultPlan::none().with_event(FaultEvent {
            rank,
            after_ops,
            kind: FaultKind::Kill,
        })
    }

    /// Plan that wedges `rank` after it completes `after_ops` operations.
    pub fn wedge(rank: usize, after_ops: u64) -> Self {
        FaultPlan::none().with_event(FaultEvent {
            rank,
            after_ops,
            kind: FaultKind::Wedge,
        })
    }

    /// Plan that stalls `rank`'s every operation by `delay_secs` once it
    /// has completed `after_ops` of them.
    pub fn stall(rank: usize, after_ops: u64, delay_secs: f64) -> Self {
        assert!(
            delay_secs >= 0.0 && delay_secs.is_finite(),
            "stall delay must be finite and non-negative, got {delay_secs}"
        );
        FaultPlan::none().with_event(FaultEvent {
            rank,
            after_ops,
            kind: FaultKind::Stall { delay_secs },
        })
    }

    /// Adds an event to the plan (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// A deterministic pseudo-random single-fault plan for a cluster of
    /// `size` ranks: the victim, trigger point (within `horizon_ops`
    /// operations), and fault kind all derive from `seed` via a xorshift
    /// generator — the same seed always produces the same plan.
    pub fn randomized(seed: u64, size: usize, horizon_ops: u64) -> Self {
        assert!(size > 0, "cluster must have at least one rank");
        let mut s = seed | 1; // xorshift state must be nonzero
        s = xorshift64(s);
        let rank = (s % size as u64) as usize;
        s = xorshift64(s);
        let after_ops = s % horizon_ops.max(1);
        s = xorshift64(s);
        let kind = match s % 3 {
            0 => FaultKind::Kill,
            1 => FaultKind::Wedge,
            _ => FaultKind::Stall {
                delay_secs: 1e-3 * ((s >> 8) % 10 + 1) as f64,
            },
        };
        FaultPlan {
            seed,
            events: vec![FaultEvent {
                rank,
                after_ops,
                kind,
            }],
        }
    }

    /// The seed this plan was generated from (zero for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The planned events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

fn xorshift64(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

/// The panic payload an injected [`FaultKind::Kill`] or
/// [`FaultKind::Wedge`] unwinds with. Catch it at the SPMD closure
/// boundary with [`catch_fault`]; anything else unwinding through that
/// catch is a genuine bug and is re-raised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFault {
    /// The rank the fault fired on.
    pub rank: usize,
    /// The victim's operation count when it fired (the fault fired *on*
    /// this operation; it did not complete).
    pub op: u64,
    /// The fault that fired ([`FaultKind::Kill`] or [`FaultKind::Wedge`];
    /// stalls never unwind).
    pub kind: FaultKind,
}

/// Runs `f`, converting an [`InjectedFault`] unwind into `Err(fault)`.
/// Any other panic is resumed untouched — only *injected* faults are
/// survivable; real bugs still fail the run (and, on the simulator,
/// poison the barrier exactly as before).
pub fn catch_fault<R>(f: impl FnOnce() -> R) -> Result<R, InjectedFault> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<InjectedFault>() {
            Ok(fault) => Err(*fault),
            Err(other) => resume_unwind(other),
        },
    }
}

/// A [`Comm`] wrapper that injects the faults a [`FaultPlan`] schedules
/// for this rank, and otherwise forwards every operation unchanged.
///
/// Ranks with no planned events pay one counter increment and one
/// comparison per operation — no allocation, no behavioural change.
/// Collectives forward to the backend's own implementations and count as
/// **one** operation each (matching how `CheckedComm` treats them as
/// opaque), so a plan's `after_ops` means the same thing whether the
/// program uses collectives or spells them out.
pub struct FaultyComm<'a, C: Comm> {
    inner: &'a mut C,
    /// Operations completed (or faulted on) so far.
    ops: u64,
    /// This rank's planned events, sorted by trigger point, soonest last
    /// (so the next event is `schedule.last()` and firing is a `pop`).
    schedule: Vec<FaultEvent>,
    /// Active per-operation stall, seconds (0 = none).
    stall_secs: f64,
}

impl<'a, C: Comm> FaultyComm<'a, C> {
    /// Wraps `inner`, arming whatever events `plan` schedules for its
    /// rank.
    pub fn attach(inner: &'a mut C, plan: &FaultPlan) -> Self {
        let rank = inner.rank();
        let mut schedule: Vec<FaultEvent> = plan
            .events()
            .iter()
            .filter(|e| e.rank == rank)
            .copied()
            .collect();
        schedule.sort_by_key(|e| e.after_ops);
        schedule.reverse();
        FaultyComm {
            inner,
            ops: 0,
            schedule,
            stall_secs: 0.0,
        }
    }

    /// Operations this rank has performed through the wrapper.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Counts one operation, firing any fault scheduled at this point.
    /// Kill/Wedge unwind with an [`InjectedFault`]; a stall arms the
    /// per-operation delay and charges it from this operation on.
    fn tick(&mut self) {
        let op = self.ops;
        self.ops += 1;
        while let Some(&event) = self.schedule.last() {
            if op < event.after_ops {
                break;
            }
            self.schedule.pop();
            match event.kind {
                FaultKind::Stall { delay_secs } => self.stall_secs = delay_secs,
                kind @ (FaultKind::Kill | FaultKind::Wedge) => {
                    if kind == FaultKind::Kill {
                        // A backend that can die for real (one OS process
                        // per rank) does so here and never returns; the
                        // in-process backends report `false` and the kill
                        // falls back to the panic-unwind below.
                        let _ = self.inner.crash();
                    }
                    std::panic::panic_any(InjectedFault {
                        rank: self.inner.rank(),
                        op,
                        kind,
                    });
                }
            }
        }
        if self.stall_secs > 0.0 {
            // Virtual-clock backends charge the delay; wall-clock
            // backends live it. (`compute` is a no-op on native, sleep
            // is invisible to the simulator's clock — both paths are
            // charged exactly once.)
            self.inner.compute(self.stall_secs);
            std::thread::sleep(std::time::Duration::from_secs_f64(self.stall_secs));
        }
    }
}

impl<C: Comm> Comm for FaultyComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn compute(&mut self, work: f64) {
        // Compute is not a communication operation: faults trigger on
        // protocol actions, where both backends count identically.
        self.inner.compute(work);
    }

    fn now_secs(&self) -> f64 {
        self.inner.now_secs()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        self.tick();
        self.inner.send(dst, tag, payload);
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        self.tick();
        self.inner.recv(src, tag)
    }

    fn barrier(&mut self) {
        self.tick();
        self.inner.barrier();
    }

    fn isend(&mut self, dst: usize, tag: Tag, payload: Payload) -> SendRequest {
        self.tick();
        self.inner.isend(dst, tag, payload)
    }

    fn irecv(&mut self, src: usize, tag: Tag) -> RecvRequest {
        self.tick();
        self.inner.irecv(src, tag)
    }

    fn wait_send(&mut self, req: SendRequest) {
        self.tick();
        self.inner.wait_send(req);
    }

    fn wait_recv(&mut self, req: RecvRequest) -> Payload {
        self.tick();
        self.inner.wait_recv(req)
    }

    fn test_recv(&mut self, req: &RecvRequest) -> bool {
        // Advisory probe: not counted (probing in a poll loop would make
        // `after_ops` depend on scheduling noise), never faults.
        self.inner.test_recv(req)
    }

    fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        self.tick();
        self.inner.post(dst, tag, payload)
    }

    fn recv_deadline(&mut self, src: usize, tag: Tag, timeout_secs: f64) -> Option<Payload> {
        self.tick();
        self.inner.recv_deadline(src, tag, timeout_secs)
    }

    fn barrier_deadline(&mut self, timeout_secs: f64) -> bool {
        self.tick();
        self.inner.barrier_deadline(timeout_secs)
    }

    fn crash(&mut self) -> bool {
        // Not an application operation — `crash` is how an injected kill
        // reaches the backend, so it must not itself advance the op
        // counter.
        self.inner.crash()
    }

    // Collectives count as one operation and then forward to the
    // backend's own implementations (preserving its cost accounting and
    // data-movement order), exactly as `CheckedComm` delegates them.

    fn multicast(&mut self, dsts: &[usize], tag: Tag, payload: Payload) {
        self.tick();
        self.inner.multicast(dsts, tag, payload);
    }

    fn bcast_from(&mut self, root: usize, tag: Tag, payload: Payload) -> Payload {
        self.tick();
        self.inner.bcast_from(root, tag, payload)
    }

    fn gather_to(&mut self, root: usize, tag: Tag, payload: Payload) -> Option<Vec<Payload>> {
        self.tick();
        self.inner.gather_to(root, tag, payload)
    }

    fn allgather(&mut self, tag: Tag, payload: Payload) -> Vec<Payload> {
        self.tick();
        self.inner.allgather(tag, payload)
    }

    fn allreduce_f64(&mut self, tag: Tag, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        self.tick();
        self.inner.allreduce_f64(tag, value, op)
    }

    fn exchange(
        &mut self,
        sends: Vec<(usize, Payload)>,
        recv_from: &[usize],
        tag: Tag,
    ) -> Vec<(usize, Payload)> {
        self.tick();
        self.inner.exchange(sends, recv_from, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_sim::cluster::{Cluster, ClusterSpec};

    #[test]
    fn randomized_plans_are_seed_deterministic() {
        let a = FaultPlan::randomized(42, 4, 100);
        let b = FaultPlan::randomized(42, 4, 100);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 1);
        assert!(a.events()[0].rank < 4);
        assert!(a.events()[0].after_ops < 100);
        // Different seeds eventually differ (not a strict requirement,
        // but these two do — pinning guards against a degenerate mix).
        assert_ne!(a, FaultPlan::randomized(43, 4, 100));
    }

    #[test]
    fn kill_fires_at_the_planned_op_and_is_catchable() {
        let report = Cluster::new(ClusterSpec::uniform(2)).run(|env| {
            let plan = FaultPlan::kill(1, 2);
            let rank = env.rank();
            let outcome = catch_fault(|| {
                let mut comm = FaultyComm::attach(env, &plan);
                // ops 0, 1: survive. Rank 1's op 2 fires.
                comm.post(rank ^ 1, Tag(5), Payload::from_u64(vec![1]));
                comm.recv_deadline(rank ^ 1, Tag(5), 1.0);
                comm.post(rank ^ 1, Tag(5), Payload::from_u64(vec![2]));
                comm.ops()
            });
            match outcome {
                Ok(ops) => {
                    assert_eq!(rank, 0, "only rank 0 survives");
                    assert_eq!(ops, 3);
                    0u64
                }
                Err(fault) => {
                    assert_eq!(rank, 1);
                    assert_eq!(fault.rank, 1);
                    assert_eq!(fault.op, 2);
                    assert_eq!(fault.kind, FaultKind::Kill);
                    1u64
                }
            }
        });
        let outcomes: Vec<u64> = report.results().copied().collect();
        assert_eq!(outcomes, vec![0, 1]);
    }

    #[test]
    fn empty_plan_is_a_pass_through() {
        let report = Cluster::new(ClusterSpec::uniform(2)).run(|env| {
            let plan = FaultPlan::none();
            let peer = env.rank() ^ 1;
            let mut comm = FaultyComm::attach(env, &plan);
            comm.send(peer, Tag(3), Payload::from_u64(vec![comm.rank() as u64]));
            let got = comm.recv(peer, Tag(3)).into_u64()[0];
            comm.barrier();
            assert_eq!(comm.ops(), 3);
            got
        });
        let got: Vec<u64> = report.results().copied().collect();
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn stall_charges_virtual_time() {
        let report = Cluster::new(ClusterSpec::uniform(1)).run(|env| {
            let plan = FaultPlan::stall(0, 1, 0.001);
            let mut comm = FaultyComm::attach(env, &plan);
            comm.barrier(); // op 0: clean
            comm.barrier(); // op 1: stall arms and charges
            comm.barrier(); // op 2: charged again
            comm.now_secs()
        });
        let t = report.ranks[0].result;
        assert!(t >= 0.002, "two stalled ops must charge 2ms, got {t}");
    }

    #[test]
    fn foreign_panics_pass_through_catch_fault() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            catch_fault(|| panic!("a genuine bug")).ok();
        }));
        assert!(caught.is_err(), "non-fault panic must be re-raised");
    }
}
