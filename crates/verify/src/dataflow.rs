//! Static audit of a stage graph: the dataflow half of the SPMD
//! contract.
//!
//! A multi-field session declares its per-iteration computation as a set
//! of named fields plus a list of kernel stages, each naming the fields
//! it reads and the fields it writes. Like the communication schedule,
//! that declaration is plain *data* — so before the first pass runs, the
//! whole dataflow can be checked: every access must resolve to a
//! registered field, names must be unambiguous, and the writer→reader
//! dependencies must admit a topological order. The audit here is
//! deliberately free of any kernel or array types: callers describe
//! their graph as [`StageDecl`] records and receive [`Diagnostic`]s,
//! the same currency as the schedule audit and the trace analyzer.

use crate::diag::{Diagnostic, DiagnosticKind};

/// One stage of a dataflow graph, reduced to the names the audit needs:
/// the stage's own name plus the field names it reads and writes. A
/// field appearing in both `reads` and `writes` is an in-place update
/// and creates **no** self-dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDecl {
    /// The stage's unique name.
    pub name: String,
    /// Names of the fields the stage reads (gathered or owned-only —
    /// the distinction is a runtime concern, not a dataflow one).
    pub reads: Vec<String>,
    /// Names of the fields the stage writes.
    pub writes: Vec<String>,
}

/// Audits a stage graph declaration: `fields` is the registered field
/// set, `stages` the kernel stages in declaration order. Returns every
/// violation found — duplicate field or stage names, reads/writes of
/// unregistered fields, and writer→reader cycles — as [`Diagnostic`]s.
/// An empty result means a deterministic topological stage schedule
/// exists (see [`topological_order`]).
///
/// The graph is replicated data, identical on every rank, so the
/// diagnostics carry rank 0 by convention.
pub fn audit_stage_graph(fields: &[String], stages: &[StageDecl]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    for (i, f) in fields.iter().enumerate() {
        if fields[..i].contains(f) {
            diags.push(Diagnostic::new(
                DiagnosticKind::DuplicateFieldName,
                0,
                format!("field {f:?} is registered more than once"),
            ));
        }
    }
    for (i, s) in stages.iter().enumerate() {
        if stages[..i].iter().any(|t| t.name == s.name) {
            diags.push(Diagnostic::new(
                DiagnosticKind::DuplicateStageName,
                0,
                format!("stage {:?} is declared more than once", s.name),
            ));
        }
        for (what, names) in [("reads", &s.reads), ("writes", &s.writes)] {
            for f in names {
                if !fields.contains(f) {
                    diags.push(Diagnostic::new(
                        DiagnosticKind::UndeclaredFieldAccess,
                        0,
                        format!("stage {:?} {what} unregistered field {f:?}", s.name),
                    ));
                }
            }
        }
    }

    // Cycle detection only makes sense on a graph whose names resolve.
    if diags.is_empty() && topological_order(stages).is_none() {
        let cyclic = cycle_members(stages);
        let names: Vec<&str> = cyclic.iter().map(|&i| stages[i].name.as_str()).collect();
        diags.push(Diagnostic::new(
            DiagnosticKind::StageCycle,
            0,
            format!(
                "stage dependencies contain a cycle through {}",
                names.join(" -> ")
            ),
        ));
    }
    diags
}

/// The deterministic topological order of `stages` under writer→reader
/// dependencies (stage A precedes stage B whenever A writes a field B
/// reads; in-place self-updates create no edge), or `None` if the
/// dependencies are cyclic. Ties break by declaration order, so the
/// schedule is identical on every rank and across runs.
pub fn topological_order(stages: &[StageDecl]) -> Option<Vec<usize>> {
    let m = stages.len();
    let edge =
        |a: usize, b: usize| a != b && stages[a].writes.iter().any(|f| stages[b].reads.contains(f));
    let mut indegree: Vec<usize> = (0..m)
        .map(|b| (0..m).filter(|&a| edge(a, b)).count())
        .collect();
    let mut placed = vec![false; m];
    let mut order = Vec::with_capacity(m);
    while order.len() < m {
        // Deterministic tie-break: the lowest-numbered ready stage.
        let next = (0..m).find(|&i| !placed[i] && indegree[i] == 0)?;
        placed[next] = true;
        order.push(next);
        for (b, deg) in indegree.iter_mut().enumerate() {
            if edge(next, b) {
                *deg -= 1;
            }
        }
    }
    Some(order)
}

/// The declaration indices of the stages left over by Kahn's algorithm —
/// the members of (at least one) dependency cycle.
fn cycle_members(stages: &[StageDecl]) -> Vec<usize> {
    let m = stages.len();
    let edge =
        |a: usize, b: usize| a != b && stages[a].writes.iter().any(|f| stages[b].reads.contains(f));
    let mut indegree: Vec<usize> = (0..m)
        .map(|b| (0..m).filter(|&a| edge(a, b)).count())
        .collect();
    let mut placed = vec![false; m];
    while let Some(next) = (0..m).find(|&i| !placed[i] && indegree[i] == 0) {
        placed[next] = true;
        for (b, deg) in indegree.iter_mut().enumerate() {
            if edge(next, b) {
                *deg -= 1;
            }
        }
    }
    (0..m).filter(|&i| !placed[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl(name: &str, reads: &[&str], writes: &[&str]) -> StageDecl {
        StageDecl {
            name: name.to_string(),
            reads: reads.iter().map(ToString::to_string).collect(),
            writes: writes.iter().map(ToString::to_string).collect(),
        }
    }

    fn fields(names: &[&str]) -> Vec<String> {
        names.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn clean_graph_produces_no_diagnostics_and_a_dependency_order() {
        let stages = vec![
            decl("matvec", &["u"], &["w"]),
            decl("precond", &["r"], &["u"]),
        ];
        let diags = audit_stage_graph(&fields(&["r", "u", "w"]), &stages);
        assert!(diags.is_empty(), "{diags:?}");
        // precond writes u, matvec reads u: precond must come first even
        // though it is declared second.
        assert_eq!(topological_order(&stages), Some(vec![1, 0]));
    }

    #[test]
    fn in_place_update_is_not_a_self_cycle() {
        let stages = vec![decl("relax", &["y"], &["y"])];
        assert!(audit_stage_graph(&fields(&["y"]), &stages).is_empty());
        assert_eq!(topological_order(&stages), Some(vec![0]));
    }

    #[test]
    fn cycle_is_reported_with_its_members() {
        let stages = vec![decl("a", &["f"], &["g"]), decl("b", &["g"], &["f"])];
        let diags = audit_stage_graph(&fields(&["f", "g"]), &stages);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagnosticKind::StageCycle);
        assert!(diags[0].detail.contains('a') && diags[0].detail.contains('b'));
        assert_eq!(topological_order(&stages), None);
    }

    #[test]
    fn undeclared_access_names_the_stage_and_field() {
        let stages = vec![decl("relax", &["ghost"], &["y"])];
        let diags = audit_stage_graph(&fields(&["y"]), &stages);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagnosticKind::UndeclaredFieldAccess);
        assert!(diags[0].detail.contains("ghost"), "{}", diags[0].detail);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let stages = vec![decl("s", &["y"], &["y"]), decl("s", &["y"], &["y"])];
        let diags = audit_stage_graph(&fields(&["y", "y"]), &stages);
        let kinds: Vec<_> = diags.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DiagnosticKind::DuplicateFieldName));
        assert!(kinds.contains(&DiagnosticKind::DuplicateStageName));
    }

    #[test]
    fn ties_break_by_declaration_order() {
        // Two independent stages: declaration order is the schedule.
        let stages = vec![decl("z2", &["b"], &["b"]), decl("a1", &["a"], &["a"])];
        assert_eq!(topological_order(&stages), Some(vec![0, 1]));
    }
}
