//! The dynamic protocol checker: a [`Comm`] wrapper that records every
//! point-to-point and barrier event into a per-rank [`RankTrace`].
//!
//! [`CheckedComm`] forwards **every** trait method to the wrapped
//! backend explicitly — relying on the trait defaults would silently
//! bypass backend overrides (the simulator's probe, multicast cost
//! accounting) and change behaviour under test, which is exactly what a
//! checker must not do. Collectives are delegated *untraced*: their data
//! movement is the backend's own (already covered by the conformance
//! suite), and leaving them out keeps a checked run's messages and
//! clocks identical to an unchecked run — the bitwise-equivalence tests
//! hold with verification enabled for free.
//!
//! Traces are analyzed offline by [`analyze_traces`](crate::analyze_traces)
//! after the run (typically: allgather the serialized traces on
//! [`TAG_TRACE`](crate::TAG_TRACE) or collect them at cluster teardown).

use std::sync::atomic::{AtomicUsize, Ordering};

use stance_sim::{Comm, Payload, RecvRequest, SendRequest, Tag};

/// Global count of [`CheckedComm`] constructions, for pinning that
/// verification machinery is never engaged unless enabled (see
/// `tests/alloc_free.rs`).
static CONSTRUCTIONS: AtomicUsize = AtomicUsize::new(0);

/// How many [`CheckedComm`] wrappers have been constructed
/// process-wide. Strictly monotone; tests snapshot it before and after a
/// run with verification disabled and assert it did not move.
pub fn checked_comm_constructions() -> usize {
    CONSTRUCTIONS.load(Ordering::Relaxed)
}

/// The shape of a payload as the analyzer compares it: the variant and
/// its length in bytes. Enough to catch kind and size corruption without
/// hauling the data itself through the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadShape {
    /// Payload variant discriminant (0 = Empty, 1 = F64, 2 = U32,
    /// 3 = U64, 4 = Bytes).
    pub kind: u8,
    /// Payload size in bytes.
    pub bytes: u32,
}

impl PayloadShape {
    /// The shape of `p`.
    pub fn of(p: &Payload) -> Self {
        let kind = match p {
            Payload::Empty => 0,
            Payload::F64(_) => 1,
            Payload::U32(_) => 2,
            Payload::U64(_) => 3,
            Payload::Bytes(_) => 4,
        };
        PayloadShape {
            kind,
            bytes: p.size_bytes() as u32,
        }
    }

    /// The variant's name, for diagnostics.
    pub fn kind_name(self) -> &'static str {
        match self.kind {
            0 => "Empty",
            1 => "F64",
            2 => "U32",
            3 => "U64",
            _ => "Bytes",
        }
    }
}

/// One recorded communication event. Epochs are not stored: the analyzer
/// recomputes each event's barrier epoch from the `Barrier` events
/// preceding it in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A blocking `send` or a posted `isend`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: Tag,
        /// Payload shape at the send side.
        shape: PayloadShape,
        /// Whether this was an `isend` (needs a matching `wait_send`).
        nonblocking: bool,
    },
    /// A completed receive — a blocking `recv` or a `wait_recv`.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: Tag,
        /// Payload shape at the receive side.
        shape: PayloadShape,
        /// Whether this receive completed a posted request (`wait_recv`).
        via_wait: bool,
    },
    /// An `irecv` post (needs a matching `wait_recv`).
    RecvPosted {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: Tag,
    },
    /// A `wait_send` completing a posted send.
    SendWaited {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: Tag,
    },
    /// A cluster-wide barrier (advances this rank's epoch).
    Barrier,
}

/// One rank's recorded protocol history. Public fields so negative-path
/// tests can hand-build corrupted traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankTrace {
    /// The recording rank.
    pub rank: usize,
    /// Cluster size at recording time.
    pub size: usize,
    /// Events in program order.
    pub events: Vec<TraceEvent>,
}

impl RankTrace {
    /// An empty trace for `rank` of `size`.
    pub fn new(rank: usize, size: usize) -> Self {
        RankTrace {
            rank,
            size,
            events: Vec::new(),
        }
    }

    /// Serializes the trace to a `u32` payload (for gathering traces to
    /// one place for analysis).
    pub fn to_payload(&self) -> Payload {
        let mut w: Vec<u32> = Vec::with_capacity(3 + self.events.len() * 6);
        w.push(self.rank as u32);
        w.push(self.size as u32);
        w.push(self.events.len() as u32);
        for ev in &self.events {
            match *ev {
                TraceEvent::Send {
                    dst,
                    tag,
                    shape,
                    nonblocking,
                } => {
                    w.extend([
                        0,
                        dst as u32,
                        tag.0,
                        u32::from(shape.kind),
                        shape.bytes,
                        u32::from(nonblocking),
                    ]);
                }
                TraceEvent::Recv {
                    src,
                    tag,
                    shape,
                    via_wait,
                } => {
                    w.extend([
                        1,
                        src as u32,
                        tag.0,
                        u32::from(shape.kind),
                        shape.bytes,
                        u32::from(via_wait),
                    ]);
                }
                TraceEvent::RecvPosted { src, tag } => w.extend([2, src as u32, tag.0, 0, 0, 0]),
                TraceEvent::SendWaited { dst, tag } => w.extend([3, dst as u32, tag.0, 0, 0, 0]),
                TraceEvent::Barrier => w.extend([4, 0, 0, 0, 0, 0]),
            }
        }
        Payload::from_u32(w)
    }

    /// Decodes a payload produced by [`RankTrace::to_payload`].
    ///
    /// # Panics
    /// Panics on a malformed payload (the trace protocol is internal).
    pub fn from_payload(p: Payload) -> Self {
        let w = p.into_u32();
        let rank = w[0] as usize;
        let size = w[1] as usize;
        let count = w[2] as usize;
        let mut events = Vec::with_capacity(count);
        for chunk in w[3..3 + count * 6].chunks_exact(6) {
            let [op, peer, tag, kind, bytes, flag] =
                [chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5]];
            let shape = PayloadShape {
                kind: kind as u8,
                bytes,
            };
            events.push(match op {
                0 => TraceEvent::Send {
                    dst: peer as usize,
                    tag: Tag(tag),
                    shape,
                    nonblocking: flag != 0,
                },
                1 => TraceEvent::Recv {
                    src: peer as usize,
                    tag: Tag(tag),
                    shape,
                    via_wait: flag != 0,
                },
                2 => TraceEvent::RecvPosted {
                    src: peer as usize,
                    tag: Tag(tag),
                },
                3 => TraceEvent::SendWaited {
                    dst: peer as usize,
                    tag: Tag(tag),
                },
                4 => TraceEvent::Barrier,
                other => panic!("unknown trace opcode {other}"),
            });
        }
        RankTrace { rank, size, events }
    }
}

/// A [`Comm`] that records every point-to-point and barrier event into a
/// borrowed [`RankTrace`] and forwards everything to the wrapped
/// backend. Construction is counted (see [`checked_comm_constructions`])
/// so the zero-overhead-when-disabled guarantee is pinnable.
pub struct CheckedComm<'a, C: Comm> {
    inner: &'a mut C,
    trace: &'a mut RankTrace,
}

impl<'a, C: Comm> CheckedComm<'a, C> {
    /// Wraps `inner`, appending events to `trace`.
    pub fn attach(inner: &'a mut C, trace: &'a mut RankTrace) -> Self {
        CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        CheckedComm { inner, trace }
    }
}

impl<C: Comm> Comm for CheckedComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn compute(&mut self, work: f64) {
        self.inner.compute(work);
    }

    fn now_secs(&self) -> f64 {
        self.inner.now_secs()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        self.trace.events.push(TraceEvent::Send {
            dst,
            tag,
            shape: PayloadShape::of(&payload),
            nonblocking: false,
        });
        self.inner.send(dst, tag, payload);
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        let payload = self.inner.recv(src, tag);
        self.trace.events.push(TraceEvent::Recv {
            src,
            tag,
            shape: PayloadShape::of(&payload),
            via_wait: false,
        });
        payload
    }

    fn barrier(&mut self) {
        self.trace.events.push(TraceEvent::Barrier);
        self.inner.barrier();
    }

    fn isend(&mut self, dst: usize, tag: Tag, payload: Payload) -> SendRequest {
        self.trace.events.push(TraceEvent::Send {
            dst,
            tag,
            shape: PayloadShape::of(&payload),
            nonblocking: true,
        });
        self.inner.isend(dst, tag, payload)
    }

    fn irecv(&mut self, src: usize, tag: Tag) -> RecvRequest {
        self.trace.events.push(TraceEvent::RecvPosted { src, tag });
        self.inner.irecv(src, tag)
    }

    fn wait_send(&mut self, req: SendRequest) {
        self.trace.events.push(TraceEvent::SendWaited {
            dst: req.dst(),
            tag: req.tag(),
        });
        self.inner.wait_send(req);
    }

    fn wait_recv(&mut self, req: RecvRequest) -> Payload {
        let payload = self.inner.wait_recv(req);
        self.trace.events.push(TraceEvent::Recv {
            src: req.src(),
            tag: req.tag(),
            shape: PayloadShape::of(&payload),
            via_wait: true,
        });
        payload
    }

    fn test_recv(&mut self, req: &RecvRequest) -> bool {
        // Advisory probe: consumes nothing, so it needs no matching in
        // the analyzer — not recorded.
        self.inner.test_recv(req)
    }

    fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        // Recorded as an ordinary send only when the transport accepted
        // it: a post refused because the peer died delivered nothing, so
        // tracing it would fabricate an `UnmatchedSend` in an otherwise
        // clean recovered run.
        let shape = PayloadShape::of(&payload);
        let delivered = self.inner.post(dst, tag, payload);
        if delivered {
            self.trace.events.push(TraceEvent::Send {
                dst,
                tag,
                shape,
                nonblocking: false,
            });
        }
        delivered
    }

    fn recv_deadline(&mut self, src: usize, tag: Tag, timeout_secs: f64) -> Option<Payload> {
        // Dual of `post`: only a delivered message becomes a `Recv`
        // event. A timeout consumed nothing, so recording it would
        // fabricate a `PhantomRecv`.
        let payload = self.inner.recv_deadline(src, tag, timeout_secs)?;
        self.trace.events.push(TraceEvent::Recv {
            src,
            tag,
            shape: PayloadShape::of(&payload),
            via_wait: false,
        });
        Some(payload)
    }

    fn barrier_deadline(&mut self, timeout_secs: f64) -> bool {
        // A timed-out barrier withdrew this rank's arrival — nobody was
        // released by it, so only a successful release is a `Barrier`
        // epoch boundary.
        let released = self.inner.barrier_deadline(timeout_secs);
        if released {
            self.trace.events.push(TraceEvent::Barrier);
        }
        released
    }

    fn crash(&mut self) -> bool {
        // Untraced: a rank that dies abruptly leaves no trace event (and
        // on a process backend this call never returns at all).
        self.inner.crash()
    }

    // Collectives delegate untraced (see the module docs): the wrapped
    // backend's own (possibly overridden) implementations run, so a
    // checked run moves exactly the bytes an unchecked run moves.

    fn multicast(&mut self, dsts: &[usize], tag: Tag, payload: Payload) {
        self.inner.multicast(dsts, tag, payload);
    }

    fn bcast_from(&mut self, root: usize, tag: Tag, payload: Payload) -> Payload {
        self.inner.bcast_from(root, tag, payload)
    }

    fn gather_to(&mut self, root: usize, tag: Tag, payload: Payload) -> Option<Vec<Payload>> {
        self.inner.gather_to(root, tag, payload)
    }

    fn allgather(&mut self, tag: Tag, payload: Payload) -> Vec<Payload> {
        self.inner.allgather(tag, payload)
    }

    fn allreduce_f64(&mut self, tag: Tag, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        self.inner.allreduce_f64(tag, value, op)
    }

    fn exchange(
        &mut self,
        sends: Vec<(usize, Payload)>,
        recv_from: &[usize],
        tag: Tag,
    ) -> Vec<(usize, Payload)> {
        self.inner.exchange(sends, recv_from, tag)
    }
}

/// A backend that is either plain or checked, decided at runtime — the
/// session's way of wrapping its communication behind one code path
/// without constructing a [`CheckedComm`] (or touching the construction
/// counter) when verification is off.
pub enum MaybeChecked<'a, C: Comm> {
    /// Verification off: the raw backend.
    Plain(&'a mut C),
    /// Verification on: every event recorded.
    Checked(CheckedComm<'a, C>),
}

impl<'a, C: Comm> MaybeChecked<'a, C> {
    /// Wraps `inner`, checked iff a trace is supplied.
    pub fn new(inner: &'a mut C, trace: Option<&'a mut RankTrace>) -> Self {
        match trace {
            Some(t) => MaybeChecked::Checked(CheckedComm::attach(inner, t)),
            None => MaybeChecked::Plain(inner),
        }
    }
}

macro_rules! forward {
    ($self:ident, $inner:ident => $e:expr) => {
        match $self {
            MaybeChecked::Plain($inner) => $e,
            MaybeChecked::Checked($inner) => $e,
        }
    };
}

impl<C: Comm> Comm for MaybeChecked<'_, C> {
    fn rank(&self) -> usize {
        forward!(self, c => c.rank())
    }

    fn size(&self) -> usize {
        forward!(self, c => c.size())
    }

    fn compute(&mut self, work: f64) {
        forward!(self, c => c.compute(work));
    }

    fn now_secs(&self) -> f64 {
        forward!(self, c => c.now_secs())
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        forward!(self, c => c.send(dst, tag, payload));
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        forward!(self, c => c.recv(src, tag))
    }

    fn barrier(&mut self) {
        forward!(self, c => c.barrier());
    }

    fn isend(&mut self, dst: usize, tag: Tag, payload: Payload) -> SendRequest {
        forward!(self, c => c.isend(dst, tag, payload))
    }

    fn irecv(&mut self, src: usize, tag: Tag) -> RecvRequest {
        forward!(self, c => c.irecv(src, tag))
    }

    fn wait_send(&mut self, req: SendRequest) {
        forward!(self, c => c.wait_send(req));
    }

    fn wait_recv(&mut self, req: RecvRequest) -> Payload {
        forward!(self, c => c.wait_recv(req))
    }

    fn test_recv(&mut self, req: &RecvRequest) -> bool {
        forward!(self, c => c.test_recv(req))
    }

    fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        forward!(self, c => c.post(dst, tag, payload))
    }

    fn recv_deadline(&mut self, src: usize, tag: Tag, timeout_secs: f64) -> Option<Payload> {
        forward!(self, c => c.recv_deadline(src, tag, timeout_secs))
    }

    fn barrier_deadline(&mut self, timeout_secs: f64) -> bool {
        forward!(self, c => c.barrier_deadline(timeout_secs))
    }

    fn crash(&mut self) -> bool {
        forward!(self, c => c.crash())
    }

    fn multicast(&mut self, dsts: &[usize], tag: Tag, payload: Payload) {
        forward!(self, c => c.multicast(dsts, tag, payload));
    }

    fn bcast_from(&mut self, root: usize, tag: Tag, payload: Payload) -> Payload {
        forward!(self, c => c.bcast_from(root, tag, payload))
    }

    fn gather_to(&mut self, root: usize, tag: Tag, payload: Payload) -> Option<Vec<Payload>> {
        forward!(self, c => c.gather_to(root, tag, payload))
    }

    fn allgather(&mut self, tag: Tag, payload: Payload) -> Vec<Payload> {
        forward!(self, c => c.allgather(tag, payload))
    }

    fn allreduce_f64(&mut self, tag: Tag, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        forward!(self, c => c.allreduce_f64(tag, value, op))
    }

    fn exchange(
        &mut self,
        sends: Vec<(usize, Payload)>,
        recv_from: &[usize],
        tag: Tag,
    ) -> Vec<(usize, Payload)> {
        forward!(self, c => c.exchange(sends, recv_from, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_payload_round_trips() {
        let mut t = RankTrace::new(1, 4);
        t.events.push(TraceEvent::Send {
            dst: 2,
            tag: Tag(7),
            shape: PayloadShape { kind: 4, bytes: 24 },
            nonblocking: true,
        });
        t.events.push(TraceEvent::SendWaited {
            dst: 2,
            tag: Tag(7),
        });
        t.events.push(TraceEvent::Barrier);
        t.events.push(TraceEvent::RecvPosted {
            src: 0,
            tag: Tag(3),
        });
        t.events.push(TraceEvent::Recv {
            src: 0,
            tag: Tag(3),
            shape: PayloadShape { kind: 2, bytes: 8 },
            via_wait: true,
        });
        assert_eq!(RankTrace::from_payload(t.to_payload()), t);
    }

    #[test]
    fn construction_counter_moves_only_when_attached() {
        struct Dummy;
        impl Comm for Dummy {
            fn rank(&self) -> usize {
                0
            }
            fn size(&self) -> usize {
                1
            }
            fn compute(&mut self, _work: f64) {}
            fn now_secs(&self) -> f64 {
                0.0
            }
            fn send(&mut self, _dst: usize, _tag: Tag, _payload: Payload) {}
            fn recv(&mut self, _src: usize, _tag: Tag) -> Payload {
                Payload::Empty
            }
            fn barrier(&mut self) {}
        }
        let mut inner = Dummy;
        let before = checked_comm_constructions();
        {
            let mut plain = MaybeChecked::new(&mut inner, None);
            plain.send(0, Tag(1), Payload::Empty);
        }
        assert_eq!(checked_comm_constructions(), before);
        let mut trace = RankTrace::new(0, 1);
        {
            let mut checked = MaybeChecked::new(&mut inner, Some(&mut trace));
            checked.send(0, Tag(1), Payload::Empty);
        }
        assert_eq!(checked_comm_constructions(), before + 1);
        assert_eq!(trace.events.len(), 1);
    }
}
