//! The static schedule audit: global invariants of the inspector's
//! artifacts, checked from replicated per-rank summaries.
//!
//! Everything here is pure analysis over data the inspector already
//! produced. The only communication is [`audit_collective`]'s one
//! allgather of [`ScheduleSummary`]s, after which every rank runs the
//! identical checks on identical input — so a failing audit fails on
//! every rank with the same report.

use stance_inspector::{CommSchedule, LocalAdjacency, TranslatedAdjacency};
use stance_onedim::{BlockPartition, Interval, RedistributionPlan};
use stance_sim::{Comm, Payload, Tag};

use crate::diag::{render, Diagnostic, DiagnosticKind};

/// Reserved tag for the audit's summary allgather (re-exported from the
/// central [`stance_sim::tags`] registry).
pub const TAG_AUDIT: Tag = stance_sim::tags::TAG_AUDIT;

/// Reserved tag for the protocol checker's trace allgather (see
/// [`crate::analyze_traces`]; re-exported from the central
/// [`stance_sim::tags`] registry).
pub const TAG_TRACE: Tag = stance_sim::tags::TAG_TRACE;

/// One rank's schedule, flattened to globals for cross-rank comparison:
/// send lists are translated from block-local indices to global element
/// ids, so rank p's segment to q and q's segment from p must be equal
/// element-for-element. Serializes to a `u32` payload for the audit's
/// allgather; tests hand-build corrupted summaries directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleSummary {
    /// The rank this summary describes.
    pub rank: usize,
    /// The rank's owned interval.
    pub interval: Interval,
    /// Size of the global index space the partition must tile.
    pub index_space: usize,
    /// `(peer, globals sent)` per send segment, in schedule order.
    pub sends: Vec<(usize, Vec<u32>)>,
    /// `(peer, globals received)` per receive segment, in schedule order.
    pub recvs: Vec<(usize, Vec<u32>)>,
}

impl ScheduleSummary {
    /// Summarizes `schedule` for an index space of `n` elements,
    /// translating send locals to globals.
    pub fn of(schedule: &CommSchedule, n: usize) -> Self {
        let base = schedule.interval().start as u32;
        ScheduleSummary {
            rank: schedule.rank(),
            interval: schedule.interval(),
            index_space: n,
            sends: schedule
                .sends()
                .iter()
                .map(|(peer, locals)| (*peer, locals.iter().map(|&l| base + l).collect()))
                .collect(),
            recvs: schedule.recvs().to_vec(),
        }
    }

    /// Packs the summary into a `u32` payload for the audit allgather.
    pub fn to_payload(&self) -> Payload {
        let mut w: Vec<u32> = vec![
            self.rank as u32,
            self.interval.start as u32,
            self.interval.end as u32,
            self.index_space as u32,
            self.sends.len() as u32,
            self.recvs.len() as u32,
        ];
        for (peer, globals) in self.sends.iter().chain(&self.recvs) {
            w.push(*peer as u32);
            w.push(globals.len() as u32);
            w.extend_from_slice(globals);
        }
        Payload::from_u32(w)
    }

    /// Decodes a payload produced by [`ScheduleSummary::to_payload`].
    ///
    /// # Panics
    /// Panics on a malformed payload (the audit protocol is internal).
    pub fn from_payload(p: Payload) -> Self {
        let w = p.into_u32();
        let rank = w[0] as usize;
        let interval = Interval::new(w[1] as usize, w[2] as usize);
        let index_space = w[3] as usize;
        let n_sends = w[4] as usize;
        let n_recvs = w[5] as usize;
        let mut at = 6usize;
        let segments = |count: usize, at: &mut usize| -> Vec<(usize, Vec<u32>)> {
            (0..count)
                .map(|_| {
                    let peer = w[*at] as usize;
                    let len = w[*at + 1] as usize;
                    let globals = w[*at + 2..*at + 2 + len].to_vec();
                    *at += 2 + len;
                    (peer, globals)
                })
                .collect()
        };
        let sends = segments(n_sends, &mut at);
        let recvs = segments(n_recvs, &mut at);
        assert_eq!(at, w.len(), "trailing words in schedule summary");
        ScheduleSummary {
            rank,
            interval,
            index_space,
            sends,
            recvs,
        }
    }
}

/// One communication step of a rank's program order, as the deadlock
/// check models it: sends are buffered (never block), receives block
/// until the matching send has been *posted* by the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// A (buffered) send to `to`.
    Send {
        /// Destination rank.
        to: usize,
    },
    /// A blocking receive from `from`.
    Recv {
        /// Source rank.
        from: usize,
    },
}

/// Audits a full set of per-rank schedule summaries (one per rank, in
/// rank order — the shape [`audit_collective`]'s allgather produces).
/// Checks: intervals tile the index space; send globals are owned by the
/// sender and receive globals by the peer; no global is fetched from two
/// peers; send/recv lists are pairwise symmetric element-for-element;
/// and the gather/scatter orderings the executor derives from the
/// schedules are deadlock-free.
pub fn audit_schedules(summaries: &[ScheduleSummary]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let p = summaries.len();
    for (i, s) in summaries.iter().enumerate() {
        if s.rank != i {
            diags.push(Diagnostic::new(
                DiagnosticKind::SendRecvAsymmetry,
                i,
                format!("summary at position {i} claims rank {}", s.rank),
            ));
            return diags; // Everything downstream keys on rank == index.
        }
    }
    let n = summaries.first().map_or(0, |s| s.index_space);

    // 1. The intervals tile [0, n). Intervals follow the partition's
    // arrangement (not necessarily rank order), so sort by start.
    let mut ivs: Vec<(Interval, usize)> = summaries
        .iter()
        .filter(|s| !s.interval.is_empty())
        .map(|s| (s.interval, s.rank))
        .collect();
    ivs.sort_by_key(|(iv, _)| iv.start);
    let mut covered = 0usize;
    for (iv, rank) in &ivs {
        if iv.start > covered {
            diags.push(Diagnostic::new(
                DiagnosticKind::IntervalGap,
                *rank,
                format!("[{covered}, {}) is owned by no rank", iv.start),
            ));
        } else if iv.start < covered {
            diags.push(Diagnostic::new(
                DiagnosticKind::IntervalOverlap,
                *rank,
                format!("interval {iv} overlaps [{}..] already owned", iv.start),
            ));
        }
        covered = covered.max(iv.end);
    }
    if covered < n {
        diags.push(Diagnostic::new(
            DiagnosticKind::IntervalGap,
            p.saturating_sub(1),
            format!("[{covered}, {n}) is owned by no rank"),
        ));
    }

    // 2. Per-rank segment sanity: sends own their globals, recvs' globals
    // lie in the peer's interval, and no global arrives from two peers.
    for s in summaries {
        for (peer, globals) in &s.sends {
            for &g in globals {
                if !s.interval.contains(g as usize) {
                    diags.push(
                        Diagnostic::new(
                            DiagnosticKind::GhostFromNonOwner,
                            s.rank,
                            format!(
                                "sends global {g} to rank {peer}, but owns only {}",
                                s.interval
                            ),
                        )
                        .with_peer(*peer),
                    );
                }
            }
        }
        let mut seen: Vec<(u32, usize)> = Vec::new();
        for (peer, globals) in &s.recvs {
            let peer_iv = summaries
                .get(*peer)
                .map_or(Interval::EMPTY, |ps| ps.interval);
            for &g in globals {
                if !peer_iv.contains(g as usize) {
                    diags.push(
                        Diagnostic::new(
                            DiagnosticKind::GhostFromNonOwner,
                            s.rank,
                            format!("fetches ghost {g} from rank {peer}, which owns {peer_iv}"),
                        )
                        .with_peer(*peer),
                    );
                }
                if let Some(&(_, first_peer)) = seen.iter().find(|(og, _)| *og == g) {
                    diags.push(
                        Diagnostic::new(
                            DiagnosticKind::DoubleOwnedGhost,
                            s.rank,
                            format!(
                                "ghost {g} fetched from both rank {first_peer} and rank {peer}"
                            ),
                        )
                        .with_peer(*peer),
                    );
                } else {
                    seen.push((g, *peer));
                }
            }
        }
    }

    // 3. Pairwise symmetry: p's send segment to q must equal q's receive
    // segment from p, element-for-element.
    for s in summaries {
        for (peer, sent) in &s.sends {
            let recv_side = summaries
                .get(*peer)
                .and_then(|ps| ps.recvs.iter().find(|(from, _)| *from == s.rank));
            match recv_side {
                None => diags.push(
                    Diagnostic::new(
                        DiagnosticKind::SendRecvAsymmetry,
                        s.rank,
                        format!(
                            "sends {} elements to rank {peer}, which posts no matching receive",
                            sent.len()
                        ),
                    )
                    .with_peer(*peer),
                ),
                Some((_, recvd)) if recvd != sent => {
                    let detail = if recvd.len() != sent.len() {
                        format!(
                            "sends {} elements to rank {peer} but it expects {}",
                            sent.len(),
                            recvd.len()
                        )
                    } else {
                        let at = sent.iter().zip(recvd).position(|(a, b)| a != b).unwrap();
                        format!(
                            "element {at} of the segment to rank {peer} is global {} \
                             on the sender, {} on the receiver",
                            sent[at], recvd[at]
                        )
                    };
                    diags.push(
                        Diagnostic::new(DiagnosticKind::SendRecvAsymmetry, s.rank, detail)
                            .with_peer(*peer),
                    );
                }
                Some(_) => {}
            }
        }
        for (peer, recvd) in &s.recvs {
            let has_send = summaries
                .get(*peer)
                .is_some_and(|ps| ps.sends.iter().any(|(to, _)| *to == s.rank));
            if !has_send {
                diags.push(
                    Diagnostic::new(
                        DiagnosticKind::SendRecvAsymmetry,
                        s.rank,
                        format!(
                            "expects {} elements from rank {peer}, which sends nothing",
                            recvd.len()
                        ),
                    )
                    .with_peer(*peer),
                );
            }
        }
    }

    // 4. The executor orderings derived from these schedules must be
    // deadlock-free (trivially true for sends-then-receives programs with
    // buffered sends and symmetric segments — but a corrupted or
    // hand-built schedule set has no such guarantee).
    if diags.is_empty() {
        let gather: Vec<Vec<CommOp>> = summaries.iter().map(|s| gather_ops(s, false)).collect();
        let scatter: Vec<Vec<CommOp>> = summaries.iter().map(|s| gather_ops(s, true)).collect();
        diags.extend(check_deadlock(&gather));
        diags.extend(check_deadlock(&scatter));
    }
    diags
}

/// One rank's executor program order: gather posts all sends then drains
/// receives in segment order; scatter is the reverse flow.
fn gather_ops(s: &ScheduleSummary, scatter: bool) -> Vec<CommOp> {
    let (send_segs, recv_segs) = if scatter {
        (&s.recvs, &s.sends)
    } else {
        (&s.sends, &s.recvs)
    };
    let mut ops: Vec<CommOp> = send_segs
        .iter()
        .map(|(to, _)| CommOp::Send { to: *to })
        .collect();
    ops.extend(
        recv_segs
            .iter()
            .map(|(from, _)| CommOp::Recv { from: *from }),
    );
    ops
}

/// Simulates one communication step sequence per rank under the
/// transport's semantics — buffered sends, blocking receives — and
/// reports ranks that can never progress. For each stuck rank the
/// wait-for graph (who is blocked on whom) is walked: a cycle is the
/// classic deadlock and is reported once with its full rank cycle; a
/// stuck rank whose sender simply terminated without sending is reported
/// individually.
pub fn check_deadlock(ops: &[Vec<CommOp>]) -> Vec<Diagnostic> {
    let p = ops.len();
    let mut at = vec![0usize; p];
    // in_flight[src * p + dst]: messages posted but not yet received.
    let mut in_flight = vec![0usize; p * p];
    loop {
        let mut progressed = false;
        for (rank, seq) in ops.iter().enumerate() {
            while at[rank] < seq.len() {
                match seq[at[rank]] {
                    CommOp::Send { to } => {
                        in_flight[rank * p + to] += 1;
                        at[rank] += 1;
                        progressed = true;
                    }
                    CommOp::Recv { from } => {
                        if in_flight[from * p + rank] > 0 {
                            in_flight[from * p + rank] -= 1;
                            at[rank] += 1;
                            progressed = true;
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }

    let blocked_on = |rank: usize| -> Option<usize> {
        (at[rank] < ops[rank].len()).then(|| match ops[rank][at[rank]] {
            CommOp::Recv { from } => from,
            CommOp::Send { .. } => unreachable!("buffered sends never block"),
        })
    };
    let mut diags = Vec::new();
    let mut reported = vec![false; p];
    for rank in 0..p {
        if reported[rank] || blocked_on(rank).is_none() {
            continue;
        }
        // Walk the wait-for chain from this stuck rank; it either reaches
        // a finished rank (starvation) or revisits a rank (cycle).
        let mut chain = vec![rank];
        let mut cur = rank;
        loop {
            match blocked_on(cur) {
                None => {
                    diags.push(
                        Diagnostic::new(
                            DiagnosticKind::DeadlockCycle,
                            rank,
                            format!(
                                "blocked receiving from rank {cur}, which finishes \
                                 without a matching send"
                            ),
                        )
                        .with_peer(cur),
                    );
                    break;
                }
                Some(next) => {
                    if let Some(pos) = chain.iter().position(|&r| r == next) {
                        let cycle: Vec<String> =
                            chain[pos..].iter().map(|r| format!("rank {r}")).collect();
                        diags.push(
                            Diagnostic::new(
                                DiagnosticKind::DeadlockCycle,
                                next,
                                format!(
                                    "wait-for cycle: {} -> rank {next}, every rank blocked \
                                     in a receive posted before its matching send",
                                    cycle.join(" -> ")
                                ),
                            )
                            .with_peer(chain[pos]),
                        );
                        break;
                    }
                    chain.push(next);
                    cur = next;
                }
            }
        }
        for &r in &chain {
            reported[r] = true;
        }
    }
    diags
}

/// Audits one rank's translated adjacency against its schedule and raw
/// adjacency — purely local, no communication. Recomputes each vertex's
/// interior/boundary class from the raw references and the partition
/// interval and compares it against the classification the translation
/// recorded; also checks that every off-interval reference was actually
/// scheduled as a ghost.
pub fn audit_translation(
    schedule: &CommSchedule,
    adj: &LocalAdjacency,
    tadj: &TranslatedAdjacency,
) -> Vec<Diagnostic> {
    let rank = schedule.rank();
    let iv = schedule.interval();
    let mut diags = Vec::new();
    if tadj.len() != adj.len() || tadj.num_ghosts() != schedule.num_ghosts() {
        diags.push(Diagnostic::new(
            DiagnosticKind::ClassificationMismatch,
            rank,
            format!(
                "translated adjacency shape ({} vertices, {} ghosts) does not match \
                 schedule/adjacency ({} vertices, {} ghosts) over {iv}",
                tadj.len(),
                tadj.num_ghosts(),
                adj.len(),
                schedule.num_ghosts()
            ),
        ));
        return diags;
    }
    let mut interior = vec![false; tadj.len()];
    for run in tadj.interior_runs() {
        for flag in &mut interior[run] {
            *flag = true;
        }
    }
    for (l, &is_interior) in interior.iter().enumerate().take(adj.len()) {
        let mut references_ghost = false;
        for &g in adj.neighbors_of(l) {
            if !iv.contains(g as usize) {
                references_ghost = true;
                if schedule.ghost_slot(g).is_none() {
                    diags.push(Diagnostic::new(
                        DiagnosticKind::ClassificationMismatch,
                        rank,
                        format!(
                            "vertex {l} of {iv} references global {g}, which the \
                             schedule never fetches"
                        ),
                    ));
                }
            }
        }
        if is_interior == references_ghost {
            let (is, should) = if references_ghost {
                ("interior", "boundary")
            } else {
                ("boundary", "interior")
            };
            diags.push(Diagnostic::new(
                DiagnosticKind::ClassificationMismatch,
                rank,
                format!("vertex {l} of {iv} is classified {is} but is {should}"),
            ));
        }
    }
    diags
}

/// Audits a redistribution plan against the old and new partitions, for
/// every rank: the kept intersection plus the planned receives must
/// exactly tile each rank's new interval, and every planned move must
/// ship data its source owns into its destination's new interval. This
/// is PR 5's debug-assert promoted to a release-mode, user-invokable
/// pass — purely local, since the plan derives from replicated interval
/// tables.
pub fn audit_redistribution(
    old: &BlockPartition,
    new: &BlockPartition,
    plan: &RedistributionPlan,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for m in plan.moves() {
        let src_iv = old.interval_of(m.src);
        let dst_iv = new.interval_of(m.dst);
        if m.range.intersect(&src_iv) != m.range {
            diags.push(
                Diagnostic::new(
                    DiagnosticKind::RedistributionTile,
                    m.src,
                    format!("plans to send {} but owns only {src_iv}", m.range),
                )
                .with_peer(m.dst),
            );
        }
        if m.range.intersect(&dst_iv) != m.range {
            diags.push(
                Diagnostic::new(
                    DiagnosticKind::RedistributionTile,
                    m.dst,
                    format!(
                        "is sent {} by rank {} but its new interval is {dst_iv}",
                        m.range, m.src
                    ),
                )
                .with_peer(m.src),
            );
        }
    }
    for rank in 0..new.num_procs() {
        let new_iv = new.interval_of(rank);
        let kept = old.interval_of(rank).intersect(&new_iv);
        let mut segs: Vec<Interval> = plan.recvs_of(rank).map(|m| m.range).collect();
        if !kept.is_empty() {
            segs.push(kept);
        }
        segs.sort_by_key(|iv| iv.start);
        let mut covered = new_iv.start;
        let mut broken = false;
        for seg in &segs {
            if seg.start != covered {
                broken = true;
                break;
            }
            covered = seg.end;
        }
        if broken || covered != new_iv.end {
            diags.push(Diagnostic::new(
                DiagnosticKind::RedistributionTile,
                rank,
                format!(
                    "kept copy {kept} + {} planned receives do not tile the new \
                     interval {new_iv}",
                    segs.len() - usize::from(!kept.is_empty())
                ),
            ));
        }
    }
    diags
}

/// The collective audit the session runs after every schedule build or
/// remap: audits this rank's translation locally, allgathers schedule
/// summaries on [`TAG_AUDIT`], and audits the global schedule set. Every
/// rank returns the same schedule-level diagnostics.
pub fn audit_collective<C: Comm>(
    env: &mut C,
    n: usize,
    schedule: &CommSchedule,
    adj: &LocalAdjacency,
    tadj: &TranslatedAdjacency,
) -> Vec<Diagnostic> {
    let mut diags = audit_translation(schedule, adj, tadj);
    let mine = ScheduleSummary::of(schedule, n);
    let parts = env.allgather(TAG_AUDIT, mine.to_payload());
    let summaries: Vec<ScheduleSummary> = parts
        .into_iter()
        .map(ScheduleSummary::from_payload)
        .collect();
    diags.extend(audit_schedules(&summaries));
    diags
}

/// Panics with the rendered report if `diags` is non-empty — the
/// behaviour of a failed verification pass inside a session.
pub fn expect_clean(context: &str, diags: &[Diagnostic]) {
    assert!(
        diags.is_empty(),
        "{context} found {} contract violation(s):\n{}",
        diags.len(),
        render(diags)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(
        rank: usize,
        interval: (usize, usize),
        n: usize,
        sends: Vec<(usize, Vec<u32>)>,
        recvs: Vec<(usize, Vec<u32>)>,
    ) -> ScheduleSummary {
        ScheduleSummary {
            rank,
            interval: Interval::new(interval.0, interval.1),
            index_space: n,
            sends,
            recvs,
        }
    }

    /// Two ranks exchanging their boundary elements: the canonical clean
    /// schedule pair.
    fn clean_pair() -> Vec<ScheduleSummary> {
        vec![
            summary(0, (0, 4), 8, vec![(1, vec![3])], vec![(1, vec![4])]),
            summary(1, (4, 8), 8, vec![(0, vec![4])], vec![(0, vec![3])]),
        ]
    }

    #[test]
    fn clean_schedules_have_no_diagnostics() {
        assert_eq!(audit_schedules(&clean_pair()), Vec::new());
    }

    #[test]
    fn summary_payload_round_trips() {
        for s in clean_pair() {
            assert_eq!(ScheduleSummary::from_payload(s.to_payload()), s);
        }
    }

    #[test]
    fn interval_gap_is_named() {
        let mut set = clean_pair();
        set[1].interval = Interval::new(5, 8);
        let diags = audit_schedules(&set);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == DiagnosticKind::IntervalGap && d.detail.contains("[4, 5)")),
            "{diags:?}"
        );
    }

    #[test]
    fn interval_overlap_is_named() {
        let mut set = clean_pair();
        set[1].interval = Interval::new(3, 8);
        let diags = audit_schedules(&set);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == DiagnosticKind::IntervalOverlap && d.rank == 1),
            "{diags:?}"
        );
    }

    #[test]
    fn deadlock_cycle_is_detected() {
        // Both ranks receive before sending: the classic head-to-head
        // blocking-receive deadlock.
        let ops = vec![
            vec![CommOp::Recv { from: 1 }, CommOp::Send { to: 1 }],
            vec![CommOp::Recv { from: 0 }, CommOp::Send { to: 0 }],
        ];
        let diags = check_deadlock(&ops);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::DeadlockCycle);
        assert!(diags[0].detail.contains("cycle"), "{}", diags[0].detail);
    }

    #[test]
    fn sends_then_receives_never_deadlock() {
        let ops = vec![
            vec![CommOp::Send { to: 1 }, CommOp::Recv { from: 1 }],
            vec![CommOp::Send { to: 0 }, CommOp::Recv { from: 0 }],
        ];
        assert_eq!(check_deadlock(&ops), Vec::new());
    }

    #[test]
    fn starved_receive_names_the_finished_peer() {
        let ops = vec![vec![CommOp::Recv { from: 1 }], vec![]];
        let diags = check_deadlock(&ops);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagnosticKind::DeadlockCycle);
        assert_eq!(diags[0].peer, Some(1));
        assert!(diags[0].detail.contains("finishes"), "{}", diags[0].detail);
    }
}
