//! Offline analysis of recorded protocol traces.
//!
//! The analyzer replays every rank's [`RankTrace`] and matches traffic
//! per `(source, destination, tag)` stream — the FIFO unit of the
//! [`Comm`](stance_sim::Comm) contract. Blocking and nonblocking events
//! on one stream are matched together, exactly as the transport orders
//! them. Each event's barrier epoch is recomputed from the `Barrier`
//! events preceding it in its trace.

use std::collections::{BTreeMap, BTreeSet};

use stance_sim::Comm;

use crate::audit::TAG_TRACE;
use crate::checked::{PayloadShape, RankTrace, TraceEvent};
use crate::diag::{Diagnostic, DiagnosticKind};

/// A stream key: (sender, receiver, tag value).
type Stream = (usize, usize, u32);

/// Analyzes a full set of per-rank traces and returns every protocol
/// violation found: unmatched sends, receives no in-flight message could
/// satisfy, payload kind/size corruption, send/receive requests never
/// waited (or waited without a post), barrier arity mismatches, and
/// matched pairs whose receive completed in an earlier barrier epoch
/// than the send was posted in.
pub fn analyze_traces(traces: &[RankTrace]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Replay each trace once, bucketing events by stream.
    let mut sends: BTreeMap<Stream, Vec<(PayloadShape, u32)>> = BTreeMap::new();
    let mut recvs: BTreeMap<Stream, Vec<(PayloadShape, u32)>> = BTreeMap::new();
    let mut send_posts: BTreeMap<Stream, (usize, usize)> = BTreeMap::new(); // (isends, waits)
    let mut recv_posts: BTreeMap<Stream, (usize, usize)> = BTreeMap::new(); // (irecvs, waits)
    let mut barriers: Vec<(usize, u32)> = Vec::new();
    // (rank, tag) pairs caught using a reserved tag the runtime does not
    // register — one diagnostic per pair, not per event.
    let mut reserved_misuse: BTreeSet<(usize, u32)> = BTreeSet::new();
    for t in traces {
        let mut epoch = 0u32;
        for ev in &t.events {
            let tag_of = match *ev {
                TraceEvent::Send { tag, .. }
                | TraceEvent::Recv { tag, .. }
                | TraceEvent::RecvPosted { tag, .. }
                | TraceEvent::SendWaited { tag, .. } => Some(tag),
                TraceEvent::Barrier => None,
            };
            if let Some(tag) = tag_of {
                if tag.is_reserved() && !stance_sim::tags::is_runtime_tag(tag) {
                    reserved_misuse.insert((t.rank, tag.0));
                }
            }
            match *ev {
                TraceEvent::Send {
                    dst,
                    tag,
                    shape,
                    nonblocking,
                } => {
                    sends
                        .entry((t.rank, dst, tag.0))
                        .or_default()
                        .push((shape, epoch));
                    if nonblocking {
                        send_posts.entry((t.rank, dst, tag.0)).or_default().0 += 1;
                    }
                }
                TraceEvent::Recv {
                    src,
                    tag,
                    shape,
                    via_wait,
                } => {
                    recvs
                        .entry((src, t.rank, tag.0))
                        .or_default()
                        .push((shape, epoch));
                    if via_wait {
                        recv_posts.entry((src, t.rank, tag.0)).or_default().1 += 1;
                    }
                }
                TraceEvent::RecvPosted { src, tag } => {
                    recv_posts.entry((src, t.rank, tag.0)).or_default().0 += 1;
                }
                TraceEvent::SendWaited { dst, tag } => {
                    send_posts.entry((t.rank, dst, tag.0)).or_default().1 += 1;
                }
                TraceEvent::Barrier => epoch += 1,
            }
        }
        barriers.push((t.rank, epoch));
    }

    // Reserved-band hygiene: traffic on a reserved tag that is not a
    // registered runtime tag can silently collide with a future runtime
    // protocol — flag it now, while it is still harmless.
    for &(rank, tag) in &reserved_misuse {
        diags.push(
            Diagnostic::new(
                DiagnosticKind::ReservedTagMisuse,
                rank,
                format!(
                    "traffic on reserved tag {tag} which is not a registered runtime \
                     tag (reserved band starts at {}; see stance_sim::tags)",
                    stance_sim::Tag::RESERVED_BASE
                ),
            )
            .with_tag(stance_sim::Tag(tag)),
        );
    }

    // Barrier arity: every rank must have passed the same number of
    // barriers — a rank that skipped one would have hung the run (or
    // consumed a later epoch's signal).
    if let Some(&(first_rank, first)) = barriers.first() {
        for &(rank, count) in &barriers[1..] {
            if count != first {
                diags.push(Diagnostic::new(
                    DiagnosticKind::BarrierArity,
                    rank,
                    format!("passed {count} barriers where rank {first_rank} passed {first}"),
                ));
            }
        }
    }

    // Stream matching: sends and receives pair up FIFO per stream.
    let streams: Vec<Stream> = sends.keys().chain(recvs.keys()).copied().collect();
    let mut seen: Vec<Stream> = Vec::new();
    for key in streams {
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let (src, dst, tag) = key;
        let tag = stance_sim::Tag(tag);
        let empty = Vec::new();
        let s = sends.get(&key).unwrap_or(&empty);
        let r = recvs.get(&key).unwrap_or(&empty);
        for (i, ((s_shape, s_epoch), (r_shape, r_epoch))) in s.iter().zip(r).enumerate() {
            if s_shape != r_shape {
                diags.push(
                    Diagnostic::new(
                        DiagnosticKind::PayloadMismatch,
                        dst,
                        format!(
                            "message {i} from rank {src}: sent {} ({} bytes), \
                             received {} ({} bytes)",
                            s_shape.kind_name(),
                            s_shape.bytes,
                            r_shape.kind_name(),
                            r_shape.bytes
                        ),
                    )
                    .with_peer(src)
                    .with_tag(tag),
                );
            }
            if r_epoch < s_epoch {
                diags.push(
                    Diagnostic::new(
                        DiagnosticKind::EpochCrossing,
                        dst,
                        format!(
                            "message {i} from rank {src} was received in barrier epoch \
                             {r_epoch} but sent in epoch {s_epoch} — the trace is \
                             inconsistent"
                        ),
                    )
                    .with_peer(src)
                    .with_tag(tag),
                );
            }
        }
        if s.len() > r.len() {
            diags.push(
                Diagnostic::new(
                    DiagnosticKind::UnmatchedSend,
                    src,
                    format!(
                        "{} of {} messages to rank {dst} were never received",
                        s.len() - r.len(),
                        s.len()
                    ),
                )
                .with_peer(dst)
                .with_tag(tag),
            );
        }
        if r.len() > s.len() {
            diags.push(
                Diagnostic::new(
                    DiagnosticKind::PhantomRecv,
                    dst,
                    format!(
                        "{} of {} receives from rank {src} have no in-flight message \
                         to satisfy them",
                        r.len() - s.len(),
                        r.len()
                    ),
                )
                .with_peer(src)
                .with_tag(tag),
            );
        }
    }

    // Request-handle accounting, per stream.
    for (&(src, dst, tag), &(posted, waited)) in &send_posts {
        if posted != waited {
            let detail = if posted > waited {
                format!(
                    "{} of {posted} send requests to rank {dst} were never waited",
                    posted - waited
                )
            } else {
                format!("{waited} wait_send calls for only {posted} posted sends to rank {dst}")
            };
            diags.push(
                Diagnostic::new(DiagnosticKind::LeakedSendRequest, src, detail)
                    .with_peer(dst)
                    .with_tag(stance_sim::Tag(tag)),
            );
        }
    }
    for (&(src, dst, tag), &(posted, waited)) in &recv_posts {
        if posted != waited {
            let detail = if posted > waited {
                format!(
                    "{} of {posted} receive requests for rank {src} were never waited",
                    posted - waited
                )
            } else {
                format!(
                    "{waited} wait_recv calls for only {posted} posted receives from rank {src}"
                )
            };
            diags.push(
                Diagnostic::new(DiagnosticKind::LeakedRecvRequest, dst, detail)
                    .with_peer(src)
                    .with_tag(stance_sim::Tag(tag)),
            );
        }
    }
    diags
}

/// Collective trace analysis: allgathers every rank's serialized trace
/// on [`TAG_TRACE`] and analyzes the full set. Every rank returns the
/// same diagnostics. The allgather itself runs on the *raw* backend —
/// it must not append to the traces being analyzed.
pub fn analyze_collective<C: Comm>(env: &mut C, mine: &RankTrace) -> Vec<Diagnostic> {
    let parts = env.allgather(TAG_TRACE, mine.to_payload());
    let traces: Vec<RankTrace> = parts.into_iter().map(RankTrace::from_payload).collect();
    analyze_traces(&traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_sim::Tag;

    fn shape(bytes: u32) -> PayloadShape {
        PayloadShape { kind: 2, bytes }
    }

    fn send(dst: usize, tag: u32, bytes: u32) -> TraceEvent {
        TraceEvent::Send {
            dst,
            tag: Tag(tag),
            shape: shape(bytes),
            nonblocking: false,
        }
    }

    fn recv(src: usize, tag: u32, bytes: u32) -> TraceEvent {
        TraceEvent::Recv {
            src,
            tag: Tag(tag),
            shape: shape(bytes),
            via_wait: false,
        }
    }

    fn traces(a: Vec<TraceEvent>, b: Vec<TraceEvent>) -> Vec<RankTrace> {
        vec![
            RankTrace {
                rank: 0,
                size: 2,
                events: a,
            },
            RankTrace {
                rank: 1,
                size: 2,
                events: b,
            },
        ]
    }

    #[test]
    fn clean_exchange_has_no_diagnostics() {
        let ts = traces(
            vec![send(1, 5, 8), recv(1, 5, 8), TraceEvent::Barrier],
            vec![send(0, 5, 8), recv(0, 5, 8), TraceEvent::Barrier],
        );
        assert_eq!(analyze_traces(&ts), Vec::new());
    }

    #[test]
    fn unmatched_send_names_stream() {
        let ts = traces(vec![send(1, 5, 8), send(1, 5, 8)], vec![recv(0, 5, 8)]);
        let diags = analyze_traces(&ts);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::UnmatchedSend);
        assert_eq!(
            (diags[0].rank, diags[0].peer, diags[0].tag),
            (0, Some(1), Some(Tag(5)))
        );
    }

    #[test]
    fn phantom_recv_names_stream() {
        let ts = traces(vec![send(1, 5, 8)], vec![recv(0, 5, 8), recv(0, 9, 8)]);
        let diags = analyze_traces(&ts);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::PhantomRecv);
        assert_eq!((diags[0].rank, diags[0].tag), (1, Some(Tag(9))));
    }

    #[test]
    fn epoch_crossing_only_flags_the_impossible_direction() {
        // Send in epoch 0, receive in epoch 2: legal (buffered across
        // barriers). Receive in epoch 0 of a message sent in epoch 1:
        // impossible.
        let legal = traces(
            vec![send(1, 5, 8), TraceEvent::Barrier, TraceEvent::Barrier],
            vec![TraceEvent::Barrier, TraceEvent::Barrier, recv(0, 5, 8)],
        );
        assert_eq!(analyze_traces(&legal), Vec::new());

        let impossible = traces(
            vec![TraceEvent::Barrier, send(1, 5, 8)],
            vec![recv(0, 5, 8), TraceEvent::Barrier],
        );
        let diags = analyze_traces(&impossible);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::EpochCrossing);
    }

    #[test]
    fn reserved_tag_misuse_flags_unregistered_reserved_traffic() {
        let stray = Tag::reserved(999).0;
        let ts = traces(vec![send(1, stray, 8)], vec![recv(0, stray, 8)]);
        let diags = analyze_traces(&ts);
        let misuses: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::ReservedTagMisuse)
            .collect();
        // Both the sender and the receiver are flagged, once each.
        assert_eq!(misuses.len(), 2, "{diags:?}");
        assert_eq!(misuses[0].rank, 0);
        assert_eq!(misuses[1].rank, 1);
    }

    #[test]
    fn registered_runtime_tags_are_not_misuse() {
        let load = stance_sim::tags::TAG_LOAD.0;
        let ts = traces(
            vec![send(1, load, 8), recv(1, load, 8)],
            vec![send(0, load, 8), recv(0, load, 8)],
        );
        assert_eq!(analyze_traces(&ts), Vec::new());
    }

    #[test]
    fn barrier_arity_mismatch_names_counts() {
        let ts = traces(
            vec![TraceEvent::Barrier, TraceEvent::Barrier],
            vec![TraceEvent::Barrier],
        );
        let diags = analyze_traces(&ts);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::BarrierArity);
        assert!(diags[0].detail.contains('1') && diags[0].detail.contains('2'));
    }
}
