#![forbid(unsafe_code)]

//! Verification of the SPMD contract: a static schedule audit and a
//! dynamic checked-`Comm` protocol analyzer.
//!
//! The inspector/executor split (the paper's §3) materializes every
//! communication the runtime will perform as *data* — the
//! [`CommSchedule`](stance_inspector::CommSchedule), the
//! [`RedistributionPlan`](stance_onedim::RedistributionPlan), the
//! translated adjacency — before a single message moves. That makes the
//! whole communication structure checkable, rank-by-rank and globally,
//! in a way ad-hoc message passing never is. This crate is that checker,
//! in two halves:
//!
//! * **Static audit** ([`audit`]): given the per-rank inspector
//!   artifacts, verify the global invariants every backend relies on —
//!   the partition intervals tile the index space, every ghost resolves
//!   to exactly one owner, send/recv lists are pairwise symmetric
//!   element-for-element, the interior/boundary run classification is
//!   consistent with the ghost set, a redistribution's kept copy plus
//!   receives exactly tile the new interval, and the blocking send/recv
//!   order cannot deadlock (cycle detection on the cross-rank wait-for
//!   graph).
//! * **Dataflow audit** ([`audit_stage_graph`]): given a stage graph's
//!   declared field set and per-stage read/write sets, verify the names
//!   resolve unambiguously and the writer→reader dependencies admit a
//!   deterministic topological schedule (cycle detection), before any
//!   kernel runs.
//! * **Dynamic checker** ([`CheckedComm`] + [`analyze_traces`]): a
//!   wrapper recording every point-to-point and barrier event into a
//!   per-rank [`RankTrace`]; the offline analyzer then detects unmatched
//!   sends, receives no in-flight message could satisfy, leaked
//!   send/receive request handles, barrier arity mismatches, and
//!   message/receive pairs that would have to cross a barrier epoch
//!   backwards.
//!
//! Both halves speak [`Diagnostic`]s — structured findings naming the
//! rank, peer, tag, and interval involved — rather than generic
//! failures, so a broken backend or kernel protocol is debuggable from
//! the report alone. The adaptive session runs both behind
//! `StanceConfig::with_verification(true)`; the conformance and
//! equivalence suites run under [`CheckedComm`] on both backends as the
//! acceptance gate every future backend must pass.

mod analyzer;
mod audit;
mod checked;
mod dataflow;
mod diag;
mod fault;

pub use analyzer::{analyze_collective, analyze_traces};
pub use audit::{
    audit_collective, audit_redistribution, audit_schedules, audit_translation, check_deadlock,
    expect_clean, CommOp, ScheduleSummary, TAG_AUDIT, TAG_TRACE,
};
pub use checked::{
    checked_comm_constructions, CheckedComm, MaybeChecked, PayloadShape, RankTrace, TraceEvent,
};
pub use dataflow::{audit_stage_graph, topological_order, StageDecl};
pub use diag::{Diagnostic, DiagnosticKind};
pub use fault::{catch_fault, FaultEvent, FaultKind, FaultPlan, FaultyComm, InjectedFault};
