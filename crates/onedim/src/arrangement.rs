//! Arrangements: orderings of processors along the one-dimensional list.
//!
//! §3.4 of the paper: "There are p! arrangements for p processors" — an
//! arrangement decides which processor owns the first block, which the
//! second, and so on. Choosing a good arrangement is what lets a remapping
//! keep most data in place when capabilities change unevenly.

/// A permutation of `0..p` giving the left-to-right order of processors
/// along the one-dimensional list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Arrangement {
    order: Vec<usize>,
}

impl Arrangement {
    /// The identity arrangement `(P0, P1, …, P{p-1})`.
    pub fn identity(p: usize) -> Self {
        Arrangement {
            order: (0..p).collect(),
        }
    }

    /// Builds an arrangement from an explicit processor order.
    ///
    /// # Panics
    /// Panics unless `order` is a permutation of `0..order.len()`.
    pub fn new(order: Vec<usize>) -> Self {
        let p = order.len();
        let mut seen = vec![false; p];
        for &proc in &order {
            assert!(proc < p, "processor {proc} out of range in arrangement");
            assert!(!seen[proc], "processor {proc} appears twice in arrangement");
            seen[proc] = true;
        }
        Arrangement { order }
    }

    /// Number of processors.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the arrangement is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The processor occupying block `slot` (left-to-right).
    #[inline]
    pub fn proc_at(&self, slot: usize) -> usize {
        self.order[slot]
    }

    /// The block slot occupied by `proc`.
    ///
    /// # Panics
    /// Panics if `proc` is not in the arrangement.
    pub fn slot_of(&self, proc: usize) -> usize {
        self.order
            .iter()
            .position(|&q| q == proc)
            .unwrap_or_else(|| panic!("processor {proc} not in arrangement"))
    }

    /// The underlying order.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// Figure 7's `MOVE(LIST, C, L)`: relocate processor `c` to slot `l`,
    /// shifting the processors in between. E.g.
    /// `MOVE({1,3,5,4,6}, 5, 0) = {5,1,3,4,6}`.
    ///
    /// # Panics
    /// Panics if `c` is not present or `l` is out of range.
    pub fn move_to(&mut self, c: usize, l: usize) {
        assert!(l < self.order.len(), "slot {l} out of range");
        let x = self.slot_of(c);
        if x < l {
            // Shift (x, l] left by one.
            self.order[x..=l].rotate_left(1);
        } else if x > l {
            // Shift [l, x) right by one.
            self.order[l..=x].rotate_right(1);
        }
        debug_assert_eq!(self.order[l], c);
    }

    /// All `p!` arrangements, in lexicographic order of the order vector.
    /// Intended for exhaustive search on small `p` (the paper notes trying
    /// all cases "is feasible only for a small number of processors").
    pub fn all(p: usize) -> Vec<Arrangement> {
        assert!(p <= 9, "refusing to enumerate {p}! arrangements");
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(p);
        let mut used = vec![false; p];
        fn rec(
            p: usize,
            current: &mut Vec<usize>,
            used: &mut Vec<bool>,
            out: &mut Vec<Arrangement>,
        ) {
            if current.len() == p {
                out.push(Arrangement {
                    order: current.clone(),
                });
                return;
            }
            for i in 0..p {
                if !used[i] {
                    used[i] = true;
                    current.push(i);
                    rec(p, current, used, out);
                    current.pop();
                    used[i] = false;
                }
            }
        }
        rec(p, &mut current, &mut used, &mut out);
        out
    }
}

impl std::fmt::Display for Arrangement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, proc) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "P{proc}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let a = Arrangement::identity(4);
        assert_eq!(a.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(a.proc_at(2), 2);
        assert_eq!(a.slot_of(3), 3);
    }

    #[test]
    fn explicit_construction() {
        let a = Arrangement::new(vec![2, 0, 1]);
        assert_eq!(a.proc_at(0), 2);
        assert_eq!(a.slot_of(1), 2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_rejected() {
        let _ = Arrangement::new(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Arrangement::new(vec![0, 3]);
    }

    #[test]
    fn move_paper_example() {
        // Fig. 7: MOVE({1,3,5,4,6}, 5, 0) = {5,1,3,4,6}. The paper's example
        // uses processor names 1..6; we test the same shape on ids 0..4:
        // order {1,3,0,4,2}? Simplest: replicate with a 1:1 relabeling.
        // Use p=7 so the literal names fit.
        let mut a = Arrangement::new(vec![1, 3, 5, 4, 6, 0, 2]);
        a.move_to(5, 0);
        assert_eq!(a.as_slice()[..5], [5, 1, 3, 4, 6]);
    }

    #[test]
    fn move_right() {
        let mut a = Arrangement::new(vec![0, 1, 2, 3]);
        a.move_to(0, 2);
        assert_eq!(a.as_slice(), &[1, 2, 0, 3]);
    }

    #[test]
    fn move_left() {
        let mut a = Arrangement::new(vec![0, 1, 2, 3]);
        a.move_to(3, 1);
        assert_eq!(a.as_slice(), &[0, 3, 1, 2]);
    }

    #[test]
    fn move_noop() {
        let mut a = Arrangement::new(vec![2, 1, 0]);
        a.move_to(1, 1);
        assert_eq!(a.as_slice(), &[2, 1, 0]);
    }

    #[test]
    fn move_preserves_permutation() {
        let mut a = Arrangement::new(vec![4, 2, 0, 3, 1]);
        for c in 0..5 {
            for l in 0..5 {
                a.move_to(c, l);
                let mut sorted = a.as_slice().to_vec();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            }
        }
    }

    #[test]
    fn enumerate_all() {
        let all = Arrangement::all(3);
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].as_slice(), &[0, 1, 2]);
        assert_eq!(all[5].as_slice(), &[2, 1, 0]);
        // All distinct.
        let set: std::collections::HashSet<_> = all.iter().map(|a| a.as_slice().to_vec()).collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn display() {
        assert_eq!(
            Arrangement::new(vec![0, 3, 1, 2, 4]).to_string(),
            "(P0, P3, P1, P2, P4)"
        );
    }
}
