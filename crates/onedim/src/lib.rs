//! # stance-onedim — block partitions of the one-dimensional list
//!
//! After Phase A transforms the computational graph into a locality-preserving
//! one-dimensional order (§3.1 of the paper), *everything* the runtime does is
//! expressed in terms of contiguous intervals of that list:
//!
//! * partitioning = assigning one contiguous block per processor, sized in
//!   proportion to the processor's capability;
//! * the translation "table" = the `O(p)` replicated list of block bounds;
//! * remapping = choosing new blocks and moving the non-overlapping parts.
//!
//! This crate implements that machinery:
//!
//! * [`Interval`] — half-open index ranges with overlap arithmetic;
//! * [`Arrangement`] — an ordering of processors along the list (the paper's
//!   "arrangements", §3.4: there are `p!` of them);
//! * [`BlockPartition`] — a concrete assignment of blocks to processors,
//!   built from capability weights via largest-remainder apportionment;
//! * [`RedistributionPlan`] — the exact set of (source, destination, range)
//!   moves between two partitions, plus its cost under a
//!   [`RedistCostModel`];
//! * [`mcr::minimize_cost_redistribution`] — the greedy
//!   `MinimizeCostRedistribution` algorithm of Figure 6 (with Figure 7's
//!   `MOVE`), and an exhaustive oracle for small `p`.

#![forbid(unsafe_code)]

pub mod arrangement;
pub mod interval;
pub mod mcr;
pub mod partition;
pub mod redistribution;

pub use arrangement::Arrangement;
pub use interval::Interval;
pub use mcr::{exhaustive_best_arrangement, minimize_cost_redistribution};
pub use partition::BlockPartition;
pub use redistribution::{Move, RedistCostModel, RedistributionPlan};
