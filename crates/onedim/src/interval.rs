//! Half-open intervals `[start, end)` over the one-dimensional list.

/// A half-open range `[start, end)` of global indices.
///
/// `start == end` denotes the empty interval (a processor can legitimately be
/// assigned no elements when its capability share rounds to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First index in the interval.
    pub start: usize,
    /// One past the last index.
    pub end: usize,
}

impl Interval {
    /// Creates `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "invalid interval [{start}, {end})");
        Interval { start, end }
    }

    /// The empty interval at position 0.
    pub const EMPTY: Interval = Interval { start: 0, end: 0 };

    /// Number of indices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the interval covers nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `index` lies inside.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.start <= index && index < self.end
    }

    /// The intersection with another interval (empty if disjoint).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Interval { start, end }
        } else {
            Interval::EMPTY
        }
    }

    /// Size of the intersection.
    #[inline]
    pub fn overlap(&self, other: &Interval) -> usize {
        self.intersect(other).len()
    }

    /// Iterator over the global indices in the interval.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.start..self.end
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let i = Interval::new(3, 7);
        assert_eq!(i.len(), 4);
        assert!(!i.is_empty());
        assert!(i.contains(3));
        assert!(i.contains(6));
        assert!(!i.contains(7));
        assert!(!i.contains(2));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn empty() {
        let e = Interval::new(5, 5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains(5));
        assert_eq!(Interval::EMPTY.len(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn inverted_rejected() {
        let _ = Interval::new(7, 3);
    }

    #[test]
    fn intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        assert_eq!(a.overlap(&b), 5);
        assert_eq!(b.overlap(&a), 5);

        let c = Interval::new(10, 20);
        assert!(a.intersect(&c).is_empty());
        assert_eq!(a.overlap(&c), 0);

        let d = Interval::new(2, 4);
        assert_eq!(a.intersect(&d), d);
    }

    #[test]
    fn intersection_with_empty() {
        let a = Interval::new(0, 10);
        assert_eq!(a.overlap(&Interval::EMPTY), 0);
        assert_eq!(Interval::EMPTY.overlap(&a), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(1, 4).to_string(), "[1, 4)");
    }
}
