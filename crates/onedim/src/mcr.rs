//! `MinimizeCostRedistribution` — the greedy arrangement search of Figure 6.
//!
//! When capabilities change, dividing the list under the *original*
//! arrangement can force most elements to move (Fig. 5a); a different
//! arrangement can keep far more data in place (Fig. 5b). Trying all `p!`
//! arrangements "is feasible only for a small number of processors", so the
//! paper gives a greedy `O(p³)` procedure: for each processor (in original
//! order), try every slot of the output arrangement, keep the best.
//!
//! `COST` in Figure 6 scores a candidate arrangement by how cheap the
//! redistribution from the old partition would be; the paper maximizes a
//! goodness score combining data overlap and message count. Here `COST` is
//! `-RedistCostModel::cost`, so maximizing it minimizes modeled seconds.

use crate::arrangement::Arrangement;
use crate::partition::BlockPartition;
use crate::redistribution::{RedistCostModel, RedistributionPlan};

/// Result of an arrangement search.
#[derive(Debug, Clone, PartialEq)]
pub struct McrResult {
    /// The chosen arrangement for the new partition.
    pub arrangement: Arrangement,
    /// The new partition (new weights, chosen arrangement).
    pub partition: BlockPartition,
    /// Modeled redistribution cost from the old partition.
    pub cost: f64,
}

/// The greedy `MinimizeCostRedistribution` of Figure 6.
///
/// * `old` — the current partition (its arrangement is Figure 6's `LIST`);
/// * `new_weights` — the processors' new capabilities;
/// * `model` — the redistribution cost model (elements + messages).
///
/// Runs in `O(p³)` partition evaluations (each `O(p²)` here, which is still
/// sub-millisecond for the paper's 20 processors; see Table 1).
///
/// # Panics
/// Panics if `new_weights.len()` differs from the partition's processor
/// count.
pub fn minimize_cost_redistribution(
    old: &BlockPartition,
    new_weights: &[f64],
    model: &RedistCostModel,
) -> McrResult {
    let p = old.num_procs();
    assert_eq!(
        new_weights.len(),
        p,
        "got {} weights for {p} processors",
        new_weights.len()
    );
    // LIST := the old arrangement; LIST_OUT := working copy.
    let list = old.arrangement().clone();
    let mut list_out = list.clone();

    for i in 0..p {
        let c = list.proc_at(i);
        // Ties keep the element at its current slot. (Figure 6's pseudocode
        // breaks ties toward the lowest slot, which gratuitously perturbs
        // the arrangement and hides better moves from later iterations —
        // e.g. it misses the paper's own Fig. 5(b) arrangement.)
        let current_slot = list_out.slot_of(c);
        let mut best_score = {
            let part = BlockPartition::from_weights(old.n(), new_weights, list_out.clone());
            -model.cost_between(old, &part)
        };
        let mut best_slot = current_slot;
        for j in 0..p {
            if j == current_slot {
                continue;
            }
            let mut candidate = list_out.clone();
            candidate.move_to(c, j);
            let cand_part = BlockPartition::from_weights(old.n(), new_weights, candidate);
            let score = -model.cost_between(old, &cand_part);
            if score > best_score {
                best_score = score;
                best_slot = j;
            }
        }
        list_out.move_to(c, best_slot);
    }

    let partition = BlockPartition::from_weights(old.n(), new_weights, list_out.clone());
    let cost = model.cost_between(old, &partition);
    McrResult {
        arrangement: list_out,
        partition,
        cost,
    }
}

/// Exhaustive search over all `p!` arrangements. The oracle the paper says is
/// infeasible at scale; we use it to validate the greedy heuristic for small
/// `p`.
///
/// # Panics
/// Panics for `p > 9` (enumeration would explode).
pub fn exhaustive_best_arrangement(
    old: &BlockPartition,
    new_weights: &[f64],
    model: &RedistCostModel,
) -> McrResult {
    let p = old.num_procs();
    assert_eq!(new_weights.len(), p);
    let mut best: Option<McrResult> = None;
    for arr in Arrangement::all(p) {
        let part = BlockPartition::from_weights(old.n(), new_weights, arr.clone());
        let cost = model.cost_between(old, &part);
        let better = match &best {
            None => true,
            Some(b) => cost < b.cost,
        };
        if better {
            best = Some(McrResult {
                arrangement: arr,
                partition: part,
                cost,
            });
        }
    }
    best.expect("at least one arrangement exists")
}

/// The "without MCR" baseline: keep the old arrangement, only resize blocks
/// for the new weights.
pub fn keep_arrangement(old: &BlockPartition, new_weights: &[f64]) -> BlockPartition {
    BlockPartition::from_weights(old.n(), new_weights, old.arrangement().clone())
}

/// Convenience: the redistribution plan MCR implies.
pub fn mcr_plan(
    old: &BlockPartition,
    new_weights: &[f64],
    model: &RedistCostModel,
) -> (RedistributionPlan, McrResult) {
    let result = minimize_cost_redistribution(old, new_weights, model);
    let plan = RedistributionPlan::between(old, &result.partition);
    (plan, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_old() -> BlockPartition {
        BlockPartition::from_weights(
            100,
            &[0.27, 0.18, 0.34, 0.07, 0.14],
            Arrangement::identity(5),
        )
    }

    #[test]
    fn mcr_beats_identity_on_fig5() {
        let old = fig5_old();
        let new_w = [0.10, 0.13, 0.29, 0.24, 0.24];
        let model = RedistCostModel::elements_only();
        let kept = keep_arrangement(&old, &new_w);
        let kept_cost = model.cost_between(&old, &kept);
        let res = minimize_cost_redistribution(&old, &new_w, &model);
        assert!(
            res.cost < kept_cost,
            "MCR cost {} should beat identity cost {kept_cost}",
            res.cost
        );
        // Identity moves 69 elements; the Fig. 5b arrangement moves 36.
        // MCR must do at least as well as keeping the arrangement and should
        // find something close to the exhaustive optimum.
        let best = exhaustive_best_arrangement(&old, &new_w, &model);
        assert!(res.cost <= kept_cost);
        assert!(
            res.cost <= best.cost * 1.30 + 1.0,
            "greedy {} too far from optimal {}",
            res.cost,
            best.cost
        );
    }

    #[test]
    fn mcr_identity_when_weights_unchanged() {
        let old = fig5_old();
        let new_w = [0.27, 0.18, 0.34, 0.07, 0.14];
        let model = RedistCostModel::elements_only();
        let res = minimize_cost_redistribution(&old, &new_w, &model);
        assert_eq!(res.cost, 0.0, "same weights need no movement");
        assert_eq!(res.partition.overlap(&old), 100);
    }

    #[test]
    fn mcr_single_processor() {
        let old = BlockPartition::uniform(10, 1);
        let res = minimize_cost_redistribution(&old, &[1.0], &RedistCostModel::elements_only());
        assert_eq!(res.cost, 0.0);
        assert_eq!(res.arrangement.as_slice(), &[0]);
    }

    #[test]
    fn mcr_two_processors_swap() {
        // P0 had almost everything; now P1 should. Best arrangement keeps the
        // heavy block on the left so P1 takes over most of P0's old range...
        // actually with 2 procs the options are (P0,P1) and (P1,P0); MCR must
        // pick whichever moves less.
        let old = BlockPartition::from_weights(100, &[0.9, 0.1], Arrangement::identity(2));
        let model = RedistCostModel::elements_only();
        let res = minimize_cost_redistribution(&old, &[0.1, 0.9], &model);
        let best = exhaustive_best_arrangement(&old, &[0.1, 0.9], &model);
        assert_eq!(res.cost, best.cost);
    }

    #[test]
    fn greedy_matches_exhaustive_often() {
        // Deterministic pseudo-random weight pairs; the greedy should match
        // the exhaustive optimum in the large majority of cases and never be
        // worse than the keep-arrangement baseline.
        let model = RedistCostModel::elements_only();
        let mut greedy_optimal = 0;
        let mut total = 0;
        let mut state = 0x12345678u64;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (state >> 32) as f64 / u32::MAX as f64 + 0.01
        };
        for _ in 0..25 {
            let p = 4;
            let old_w: Vec<f64> = (0..p).map(|_| next()).collect();
            let new_w: Vec<f64> = (0..p).map(|_| next()).collect();
            let old = BlockPartition::from_weights(200, &old_w, Arrangement::identity(p));
            let res = minimize_cost_redistribution(&old, &new_w, &model);
            let best = exhaustive_best_arrangement(&old, &new_w, &model);
            let kept = model.cost_between(&old, &keep_arrangement(&old, &new_w));
            assert!(res.cost <= kept + 1e-9, "greedy worse than baseline");
            if (res.cost - best.cost).abs() < 1e-9 {
                greedy_optimal += 1;
            }
            total += 1;
        }
        assert!(
            greedy_optimal * 2 >= total,
            "greedy matched exhaustive only {greedy_optimal}/{total} times"
        );
    }

    #[test]
    fn message_penalty_changes_choice() {
        // With a huge per-message cost the best arrangement is the one with
        // fewest transfers, even if it moves more elements.
        let old = fig5_old();
        let new_w = [0.10, 0.13, 0.29, 0.24, 0.24];
        let heavy_msgs = RedistCostModel {
            per_message: 1.0e6,
            per_element: 1.0,
        };
        let res = minimize_cost_redistribution(&old, &new_w, &heavy_msgs);
        let plan = RedistributionPlan::between(&old, &res.partition);
        let kept_plan = RedistributionPlan::between(&old, &keep_arrangement(&old, &new_w));
        assert!(plan.num_messages() <= kept_plan.num_messages());
    }

    #[test]
    fn mcr_plan_consistency() {
        let old = fig5_old();
        let new_w = [0.2; 5];
        let model = RedistCostModel::elements_only();
        let (plan, res) = mcr_plan(&old, &new_w, &model);
        assert!((model.cost(&plan) - res.cost).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weights for")]
    fn weight_count_mismatch() {
        let old = BlockPartition::uniform(10, 2);
        let _ = minimize_cost_redistribution(&old, &[1.0], &RedistCostModel::elements_only());
    }
}
