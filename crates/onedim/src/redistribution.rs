//! Redistribution plans: exactly which ranges move where when the partition
//! changes, and what that costs.
//!
//! §3.4: "The two factors contributing to data redistribution time are the
//! amount of data to be transferred and the number of messages generated."
//! A [`RedistributionPlan`] captures both, and [`RedistCostModel`] turns them
//! into the scalar that `MinimizeCostRedistribution` optimizes.

use crate::interval::Interval;
use crate::partition::BlockPartition;

/// One contiguous range moving from one processor to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Source processor (owner under the old partition).
    pub src: usize,
    /// Destination processor (owner under the new partition).
    pub dst: usize,
    /// The global index range that moves.
    pub range: Interval,
}

/// The complete set of moves turning an old partition's data placement into
/// a new one. Ranges owned by the same processor before and after do not
/// appear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedistributionPlan {
    moves: Vec<Move>,
    n: usize,
    num_procs: usize,
}

impl RedistributionPlan {
    /// Computes the plan between two partitions of the same list.
    ///
    /// # Panics
    /// Panics if the partitions disagree on list length or processor count.
    pub fn between(old: &BlockPartition, new: &BlockPartition) -> Self {
        let mut plan = RedistributionPlan {
            moves: Vec::new(),
            n: old.n(),
            num_procs: old.num_procs(),
        };
        plan.recompute(old, new);
        plan
    }

    /// Recomputes this plan in place for a new pair of partitions, reusing
    /// the move storage (capacity never shrinks). An adaptive runtime that
    /// remaps repeatedly keeps one plan around instead of allocating a
    /// fresh one per remap; the result is identical to
    /// [`RedistributionPlan::between`].
    ///
    /// # Panics
    /// Panics if the partitions disagree on list length or processor count.
    pub fn recompute(&mut self, old: &BlockPartition, new: &BlockPartition) {
        assert_eq!(old.n(), new.n(), "partitions cover different lists");
        assert_eq!(
            old.num_procs(),
            new.num_procs(),
            "partitions have different processor counts"
        );
        let p = old.num_procs();
        self.moves.clear();
        for src in 0..p {
            let src_iv = old.interval_of(src);
            if src_iv.is_empty() {
                continue;
            }
            for dst in 0..p {
                if src == dst {
                    continue;
                }
                let inter = src_iv.intersect(&new.interval_of(dst));
                if !inter.is_empty() {
                    self.moves.push(Move {
                        src,
                        dst,
                        range: inter,
                    });
                }
            }
        }
        // Deterministic order: by source, then range start.
        self.moves.sort_by_key(|m| (m.src, m.range.start));
        self.n = old.n();
        self.num_procs = p;
    }

    /// All moves, ordered by `(src, range.start)`.
    #[inline]
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Number of point-to-point messages the redistribution needs (one per
    /// move: each move is a contiguous range between one pair).
    #[inline]
    pub fn num_messages(&self) -> usize {
        self.moves.len()
    }

    /// Total number of elements that change processor.
    pub fn elements_moved(&self) -> usize {
        self.moves.iter().map(|m| m.range.len()).sum()
    }

    /// Elements that stay in place (`n - moved`).
    pub fn elements_kept(&self) -> usize {
        self.n - self.elements_moved()
    }

    /// The moves sent by processor `rank`, in range order.
    pub fn sends_of(&self, rank: usize) -> impl Iterator<Item = &Move> {
        self.moves.iter().filter(move |m| m.src == rank)
    }

    /// The moves received by processor `rank`, in `(src, range)` order.
    /// Allocation-free: the master move list is already sorted by
    /// `(src, range.start)`, so filtering preserves exactly the order the
    /// receive protocol requires.
    pub fn recvs_of(&self, rank: usize) -> impl Iterator<Item = &Move> {
        self.moves.iter().filter(move |m| m.dst == rank)
    }

    /// The number of processors in the plan.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }
}

/// Scalar cost of a redistribution: `per_message × messages +
/// per_element × elements_moved` (seconds, under the network model that
/// motivates the constants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedistCostModel {
    /// Cost of each point-to-point message (setup + latency).
    pub per_message: f64,
    /// Cost of each element moved (element bytes × byte time).
    pub per_element: f64,
}

impl RedistCostModel {
    /// A model that counts only moved elements (pure overlap maximization,
    /// the first objective discussed in §3.4).
    pub fn elements_only() -> Self {
        RedistCostModel {
            per_message: 0.0,
            per_element: 1.0,
        }
    }

    /// Ethernet-flavoured constants for 8-byte elements: 2 ms per message
    /// (send setup + latency) and 8 bytes at ~1.1 MB/s per element. Matches
    /// [`stance-sim`'s `NetworkSpec::ethernet_10mbit`] defaults.
    pub fn ethernet_f64() -> Self {
        RedistCostModel {
            per_message: 2.0e-3,
            per_element: 8.0 / 1.1e6,
        }
    }

    /// The modeled cost (seconds) of a plan.
    pub fn cost(&self, plan: &RedistributionPlan) -> f64 {
        self.per_message * plan.num_messages() as f64
            + self.per_element * plan.elements_moved() as f64
    }

    /// Cost of redistributing directly between two partitions.
    pub fn cost_between(&self, old: &BlockPartition, new: &BlockPartition) -> f64 {
        self.cost(&RedistributionPlan::between(old, new))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::Arrangement;

    fn fig5_old() -> BlockPartition {
        BlockPartition::from_weights(
            100,
            &[0.27, 0.18, 0.34, 0.07, 0.14],
            Arrangement::identity(5),
        )
    }

    #[test]
    fn identity_plan_is_empty() {
        let p = fig5_old();
        let plan = RedistributionPlan::between(&p, &p);
        assert_eq!(plan.num_messages(), 0);
        assert_eq!(plan.elements_moved(), 0);
        assert_eq!(plan.elements_kept(), 100);
    }

    #[test]
    fn fig5_identity_arrangement_plan() {
        let old = fig5_old();
        let new = BlockPartition::from_weights(
            100,
            &[0.10, 0.13, 0.29, 0.24, 0.24],
            Arrangement::identity(5),
        );
        let plan = RedistributionPlan::between(&old, &new);
        // Overlap 31 → 69 elements move (paper's rounding gives 71).
        assert_eq!(plan.elements_moved(), 69);
        assert_eq!(plan.elements_kept(), 31);
        // Six pairwise transfers under exact apportionment (paper: 5).
        assert_eq!(plan.num_messages(), 6);
    }

    #[test]
    fn fig5_rearranged_plan_moves_less() {
        let old = fig5_old();
        let new = BlockPartition::from_weights(
            100,
            &[0.10, 0.13, 0.29, 0.24, 0.24],
            Arrangement::new(vec![0, 3, 1, 2, 4]),
        );
        let plan = RedistributionPlan::between(&old, &new);
        assert_eq!(plan.elements_kept(), 64);
        assert_eq!(plan.elements_moved(), 36);
        // Fewer messages than the identity arrangement (5 vs 6; paper: 3 vs 5).
        assert_eq!(plan.num_messages(), 5);
    }

    #[test]
    fn moves_partition_the_difference() {
        let old = BlockPartition::from_sizes(&[10, 10]);
        let new = BlockPartition::from_sizes(&[4, 16]);
        let plan = RedistributionPlan::between(&old, &new);
        assert_eq!(plan.moves().len(), 1);
        let m = plan.moves()[0];
        assert_eq!(m.src, 0);
        assert_eq!(m.dst, 1);
        assert_eq!(m.range, Interval::new(4, 10));
        assert_eq!(plan.elements_moved(), 6);
    }

    #[test]
    fn sends_and_recvs_views() {
        let old = BlockPartition::from_sizes(&[10, 10, 10]);
        let new = BlockPartition::from_sizes(&[2, 14, 14]);
        let plan = RedistributionPlan::between(&old, &new);
        let sends0: Vec<_> = plan.sends_of(0).collect();
        assert_eq!(sends0.len(), 1);
        assert_eq!(sends0[0].dst, 1);
        assert_eq!(sends0[0].range, Interval::new(2, 10));
        let recvs2: Vec<_> = plan.recvs_of(2).collect();
        assert_eq!(recvs2.len(), 1);
        assert_eq!(recvs2[0].src, 1);
        assert_eq!(recvs2[0].range, Interval::new(16, 20));
        assert_eq!(plan.recvs_of(0).count(), 0);
    }

    #[test]
    fn every_element_accounted_once() {
        // Moves plus per-processor overlaps must cover [0, n) exactly.
        let old = BlockPartition::from_weights(
            53,
            &[0.4, 0.1, 0.3, 0.2],
            Arrangement::new(vec![2, 0, 1, 3]),
        );
        let new = BlockPartition::from_weights(
            53,
            &[0.1, 0.4, 0.2, 0.3],
            Arrangement::new(vec![3, 1, 0, 2]),
        );
        let plan = RedistributionPlan::between(&old, &new);
        let mut covered = vec![0u8; 53];
        for m in plan.moves() {
            for g in m.range.iter() {
                covered[g] += 1;
            }
        }
        for q in 0..4 {
            for g in old.interval_of(q).intersect(&new.interval_of(q)).iter() {
                covered[g] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "coverage: {covered:?}");
    }

    #[test]
    fn cost_model() {
        let old = BlockPartition::from_sizes(&[10, 10]);
        let new = BlockPartition::from_sizes(&[4, 16]);
        let plan = RedistributionPlan::between(&old, &new);
        let m = RedistCostModel {
            per_message: 10.0,
            per_element: 1.0,
        };
        assert_eq!(m.cost(&plan), 16.0);
        assert_eq!(m.cost_between(&old, &new), 16.0);
        assert_eq!(RedistCostModel::elements_only().cost(&plan), 6.0);
    }

    #[test]
    fn recompute_reuses_storage_and_matches_between() {
        let old = fig5_old();
        let a = BlockPartition::from_weights(
            100,
            &[0.10, 0.13, 0.29, 0.24, 0.24],
            Arrangement::identity(5),
        );
        let b = BlockPartition::from_weights(
            100,
            &[0.30, 0.10, 0.20, 0.25, 0.15],
            Arrangement::new(vec![4, 1, 2, 0, 3]),
        );
        let mut plan = RedistributionPlan::between(&old, &a);
        let cap = plan.moves.capacity();
        plan.recompute(&a, &b);
        assert_eq!(plan, RedistributionPlan::between(&a, &b));
        // Same-or-larger pair recomputed in place must not shrink capacity.
        plan.recompute(&old, &a);
        assert_eq!(plan, RedistributionPlan::between(&old, &a));
        assert!(plan.moves.capacity() >= cap);
    }

    #[test]
    #[should_panic(expected = "different lists")]
    fn mismatched_lengths_rejected() {
        let a = BlockPartition::from_sizes(&[10]);
        let b = BlockPartition::from_sizes(&[11]);
        let _ = RedistributionPlan::between(&a, &b);
    }
}
