//! Block partitions: one contiguous interval of the 1-D list per processor.
//!
//! §3.1: "it is inexpensive to partition the one-dimensional list among the
//! processors according to their computational capability, since partitioning
//! is equivalent to assigning contiguous blocks of vertices to each
//! partition. The size of each block is proportional to the weight of the
//! partition."
//!
//! Block sizes are apportioned with the largest-remainder method, which keeps
//! every block within one element of its exact proportional share and assigns
//! every element exactly once.

use crate::arrangement::Arrangement;
use crate::interval::Interval;

/// A partition of `[0, n)` into `p` contiguous blocks, one per processor,
/// laid out along the list in [`Arrangement`] order.
///
/// This is exactly the information the paper's replicated translation table
/// stores (Fig. 3): first/last element per processor, `O(p)` memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPartition {
    /// Total number of elements.
    n: usize,
    /// Block boundaries in list order: `bounds[k]..bounds[k+1]` is block `k`.
    bounds: Vec<usize>,
    /// `order.proc_at(k)` owns block `k`.
    order: Arrangement,
}

impl BlockPartition {
    /// Partitions `n` elements among `weights.len()` processors with block
    /// sizes proportional to `weights`, blocks laid out in `arrangement`
    /// order. `weights[i]` is processor `i`'s capability (need not sum to 1).
    ///
    /// # Panics
    /// Panics if `weights.len() != arrangement.len()`, if any weight is
    /// negative or non-finite, or if all weights are zero.
    pub fn from_weights(n: usize, weights: &[f64], arrangement: Arrangement) -> Self {
        let p = arrangement.len();
        assert_eq!(
            weights.len(),
            p,
            "got {} weights for {p} processors",
            weights.len()
        );
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && total > 0.0,
            "weights must be non-negative, finite and not all zero"
        );

        // Largest-remainder apportionment over blocks in arrangement order.
        let shares: Vec<f64> = (0..p)
            .map(|k| n as f64 * weights[arrangement.proc_at(k)] / total)
            .collect();
        let mut sizes: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
        let assigned: usize = sizes.iter().sum();
        let mut leftover = n - assigned;
        // Give the leftover elements to the blocks with the largest
        // fractional parts; ties broken by block position for determinism.
        let mut frac: Vec<(usize, f64)> = shares
            .iter()
            .enumerate()
            .map(|(k, s)| (k, s - s.floor()))
            .collect();
        frac.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("fractional parts are finite")
                .then(a.0.cmp(&b.0))
        });
        for (k, _) in frac {
            if leftover == 0 {
                break;
            }
            sizes[k] += 1;
            leftover -= 1;
        }
        debug_assert_eq!(sizes.iter().sum::<usize>(), n);

        let mut bounds = Vec::with_capacity(p + 1);
        let mut acc = 0;
        bounds.push(0);
        for s in &sizes {
            acc += s;
            bounds.push(acc);
        }
        BlockPartition {
            n,
            bounds,
            order: arrangement,
        }
    }

    /// Equal-weight partition in identity arrangement.
    pub fn uniform(n: usize, p: usize) -> Self {
        Self::from_weights(n, &vec![1.0; p], Arrangement::identity(p))
    }

    /// Builds a partition from explicit block sizes in identity arrangement.
    ///
    /// # Panics
    /// Panics if the sizes are empty.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        Self::from_sizes_with_arrangement(sizes, Arrangement::identity(sizes.len()))
    }

    /// Builds a partition from explicit block sizes in *block (left-to-right)
    /// order* under the given arrangement: block `k` has `sizes[k]` elements
    /// and belongs to processor `arrangement.proc_at(k)`.
    ///
    /// # Panics
    /// Panics if the sizes are empty or `sizes.len() != arrangement.len()`.
    pub fn from_sizes_with_arrangement(sizes: &[usize], arrangement: Arrangement) -> Self {
        assert!(!sizes.is_empty(), "need at least one block");
        assert_eq!(
            sizes.len(),
            arrangement.len(),
            "got {} sizes for {} processors",
            sizes.len(),
            arrangement.len()
        );
        let mut bounds = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0;
        bounds.push(0);
        for &s in sizes {
            acc += s;
            bounds.push(acc);
        }
        BlockPartition {
            n: acc,
            bounds,
            order: arrangement,
        }
    }

    /// Block sizes in left-to-right block order (use together with
    /// [`Self::arrangement`] to reconstruct the partition, e.g. after
    /// broadcasting a remap decision).
    pub fn block_sizes(&self) -> Vec<usize> {
        self.bounds.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Total number of elements.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.order.len()
    }

    /// The arrangement the blocks are laid out in.
    #[inline]
    pub fn arrangement(&self) -> &Arrangement {
        &self.order
    }

    /// The interval owned by processor `proc`.
    pub fn interval_of(&self, proc: usize) -> Interval {
        let k = self.order.slot_of(proc);
        Interval::new(self.bounds[k], self.bounds[k + 1])
    }

    /// All intervals indexed by processor id.
    pub fn intervals(&self) -> Vec<Interval> {
        (0..self.num_procs()).map(|q| self.interval_of(q)).collect()
    }

    /// The processor owning global index `g` (binary search over the `O(p)`
    /// bounds, as the replicated translation table does).
    ///
    /// # Panics
    /// Panics if `g >= n`.
    pub fn owner_of(&self, g: usize) -> usize {
        assert!(g < self.n, "index {g} out of range (n = {})", self.n);
        // partition_point gives the first bound > g; block = that - 1.
        let k = self.bounds.partition_point(|&b| b <= g) - 1;
        self.order.proc_at(k)
    }

    /// Translates a global index to `(owner, local index)` — the paper's
    /// dereference operation: "The local address of a particular element is
    /// computed by subtracting it from the first element that belongs to its
    /// home processor."
    pub fn locate(&self, g: usize) -> (usize, usize) {
        assert!(g < self.n, "index {g} out of range (n = {})", self.n);
        let k = self.bounds.partition_point(|&b| b <= g) - 1;
        (self.order.proc_at(k), g - self.bounds[k])
    }

    /// Linear-scan variant of [`Self::locate`], exactly as described in the
    /// paper ("the list is searched until the processor holding the element
    /// is found"). Used to measure the cost difference; results are
    /// identical.
    pub fn locate_linear(&self, g: usize) -> (usize, usize) {
        assert!(g < self.n, "index {g} out of range (n = {})", self.n);
        for k in 0..self.num_procs() {
            if g < self.bounds[k + 1] {
                return (self.order.proc_at(k), g - self.bounds[k]);
            }
        }
        unreachable!("bounds cover [0, n)")
    }

    /// Block sizes indexed by processor id.
    pub fn sizes(&self) -> Vec<usize> {
        (0..self.num_procs())
            .map(|q| self.interval_of(q).len())
            .collect()
    }

    /// Total overlap (elements that stay on their current processor) with a
    /// second partition of the same list — the quantity MCR maximizes.
    pub fn overlap(&self, other: &BlockPartition) -> usize {
        assert_eq!(self.n, other.n, "partitions cover different lists");
        assert_eq!(
            self.num_procs(),
            other.num_procs(),
            "partitions have different processor counts"
        );
        (0..self.num_procs())
            .map(|q| self.interval_of(q).overlap(&other.interval_of(q)))
            .sum()
    }

    /// Load imbalance of this partition under per-processor capabilities:
    /// `max_i (size_i / weight_i) / (n / total_weight)`, i.e. the ratio of
    /// the slowest processor's finish time to the ideal. 1.0 is perfect.
    pub fn imbalance(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.num_procs());
        let total_w: f64 = weights.iter().sum();
        let ideal = self.n as f64 / total_w;
        let mut worst: f64 = 0.0;
        for (q, &w) in weights.iter().enumerate() {
            let size = self.interval_of(q).len() as f64;
            if size == 0.0 {
                continue;
            }
            assert!(
                w > 0.0,
                "processor {q} was assigned elements but has zero capability"
            );
            worst = worst.max(size / w);
        }
        worst / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig5_old_partition() {
        // 100 elements, capabilities (.27, .18, .34, .07, .14), identity.
        let part = BlockPartition::from_weights(
            100,
            &[0.27, 0.18, 0.34, 0.07, 0.14],
            Arrangement::identity(5),
        );
        assert_eq!(part.sizes(), vec![27, 18, 34, 7, 14]);
        assert_eq!(part.interval_of(0), Interval::new(0, 27));
        assert_eq!(part.interval_of(2), Interval::new(45, 79));
        assert_eq!(part.interval_of(4), Interval::new(86, 100));
    }

    #[test]
    fn paper_fig5_new_partition_identity() {
        let part = BlockPartition::from_weights(
            100,
            &[0.10, 0.13, 0.29, 0.24, 0.24],
            Arrangement::identity(5),
        );
        assert_eq!(part.sizes(), vec![10, 13, 29, 24, 24]);
    }

    #[test]
    fn paper_fig5_rearranged_partition() {
        // Arrangement (P0, P3, P1, P2, P4) with the new capabilities.
        let part = BlockPartition::from_weights(
            100,
            &[0.10, 0.13, 0.29, 0.24, 0.24],
            Arrangement::new(vec![0, 3, 1, 2, 4]),
        );
        // Blocks left-to-right: P0 10, P3 24, P1 13, P2 29, P4 24.
        assert_eq!(part.interval_of(0), Interval::new(0, 10));
        assert_eq!(part.interval_of(3), Interval::new(10, 34));
        assert_eq!(part.interval_of(1), Interval::new(34, 47));
        assert_eq!(part.interval_of(2), Interval::new(47, 76));
        assert_eq!(part.interval_of(4), Interval::new(76, 100));
    }

    #[test]
    fn fig5_overlap_shape() {
        // The paper reports 29 stay-in-place elements for the identity
        // arrangement and 65 for (P0,P3,P1,P2,P4); with exact
        // largest-remainder blocks the same comparison gives 31 vs 64 —
        // the same 2× improvement the figure illustrates.
        let old = BlockPartition::from_weights(
            100,
            &[0.27, 0.18, 0.34, 0.07, 0.14],
            Arrangement::identity(5),
        );
        let new_same = BlockPartition::from_weights(
            100,
            &[0.10, 0.13, 0.29, 0.24, 0.24],
            Arrangement::identity(5),
        );
        let new_rearranged = BlockPartition::from_weights(
            100,
            &[0.10, 0.13, 0.29, 0.24, 0.24],
            Arrangement::new(vec![0, 3, 1, 2, 4]),
        );
        assert_eq!(old.overlap(&new_same), 31);
        assert_eq!(old.overlap(&new_rearranged), 64);
    }

    #[test]
    fn largest_remainder_exactness() {
        // Weights that don't divide n evenly.
        let part = BlockPartition::from_weights(10, &[1.0, 1.0, 1.0], Arrangement::identity(3));
        let sizes = part.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn zero_weight_gets_empty_block() {
        let part = BlockPartition::from_weights(10, &[1.0, 0.0], Arrangement::identity(2));
        assert_eq!(part.sizes(), vec![10, 0]);
        assert!(part.interval_of(1).is_empty());
    }

    #[test]
    fn owner_and_locate() {
        let part = BlockPartition::from_sizes(&[3, 0, 4]);
        assert_eq!(part.owner_of(0), 0);
        assert_eq!(part.owner_of(2), 0);
        assert_eq!(part.owner_of(3), 2);
        assert_eq!(part.owner_of(6), 2);
        assert_eq!(part.locate(5), (2, 2));
        assert_eq!(part.locate(0), (0, 0));
    }

    #[test]
    fn locate_linear_matches_binary() {
        let part = BlockPartition::from_weights(
            97,
            &[0.2, 0.1, 0.4, 0.3],
            Arrangement::new(vec![2, 0, 3, 1]),
        );
        for g in 0..97 {
            assert_eq!(part.locate(g), part.locate_linear(g), "index {g}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_out_of_range() {
        let part = BlockPartition::uniform(10, 2);
        let _ = part.locate(10);
    }

    #[test]
    fn uniform_partition() {
        let part = BlockPartition::uniform(100, 4);
        assert_eq!(part.sizes(), vec![25, 25, 25, 25]);
        assert_eq!(part.overlap(&part), 100);
    }

    #[test]
    fn arrangement_respected_in_owner() {
        let part = BlockPartition::from_weights(8, &[1.0, 1.0], Arrangement::new(vec![1, 0]));
        // P1 gets the left block.
        assert_eq!(part.owner_of(0), 1);
        assert_eq!(part.owner_of(7), 0);
        assert_eq!(part.interval_of(1), Interval::new(0, 4));
    }

    #[test]
    fn imbalance_metrics() {
        let part = BlockPartition::from_sizes(&[50, 50]);
        // Equal split, equal weights: perfect.
        assert!((part.imbalance(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        // Equal split but P1 is half speed: it takes 100 time units vs 66.7 ideal.
        let imb = part.imbalance(&[1.0, 0.5]);
        assert!((imb - 1.5).abs() < 1e-12);
        // Weighted split fixes it.
        let balanced = BlockPartition::from_weights(99, &[2.0, 1.0], Arrangement::identity(2));
        assert_eq!(balanced.sizes(), vec![66, 33]);
        assert!((balanced.imbalance(&[2.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weights must be non-negative")]
    fn all_zero_weights_rejected() {
        let _ = BlockPartition::from_weights(10, &[0.0, 0.0], Arrangement::identity(2));
    }

    #[test]
    fn n_zero_is_fine() {
        let part = BlockPartition::from_weights(0, &[1.0, 2.0], Arrangement::identity(2));
        assert_eq!(part.sizes(), vec![0, 0]);
    }
}
