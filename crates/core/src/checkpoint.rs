//! Checkpoint/restore: the session's recovery state as a versioned byte
//! blob with **named** field records.
//!
//! A [`SessionCheckpoint`] is everything survivors need to reconstruct the
//! computation after a rank is lost: the partition (block sizes and
//! arrangement), every rank's calibrated [`MonitorSnapshot`], and every
//! per-vertex field in **global order** — each recorded *under its name*,
//! so a restore matches fields to the restoring session by name rather
//! than zipping blobs to arrays by position. It is *replicated*:
//! [`AdaptiveSession::checkpoint`](crate::AdaptiveSession::checkpoint)
//! and [`DataflowSession::checkpoint`](crate::DataflowSession::checkpoint)
//! are allgathers, so after they return every rank holds the same
//! checkpoint and any subset of survivors can restore without talking to
//! the dead.
//!
//! The wire form ([`SessionCheckpoint::to_bytes`]) is a little-endian
//! blob with a versioned header, so a checkpoint written by one run can be
//! restored by another (or persisted outside the process entirely):
//!
//! ```text
//! magic   b"STCK"                          4 bytes
//! version u32 = 2                          4
//! elem    u32 = E::SIZE_BYTES              4
//! n       u64  (elements)                  8
//! p       u32  (ranks at checkpoint time)  4
//! aux     u32  (auxiliary field count)     4
//! primary u32 name length + that many utf-8 bytes
//! sizes   p × u64   block sizes, block (left-to-right) order
//! order   p × u32   arrangement: proc_at(slot) per slot
//! mon     p × 69 bytes  monitor snapshots (flags byte + 8 f64 + u32)
//! values  n × elem      the primary field, global order
//! aux     aux × { u32 name length, name bytes, n × elem data }
//! ```
//!
//! Version 1 blobs (unnamed, positional aux arrays) are **rejected**, not
//! silently adopted: a v1 restore would have to guess names, and a wrong
//! guess would wire a solver vector to the wrong field. Decoding also
//! rejects non-UTF-8, empty, or duplicated field names — the name is the
//! restore key, so it must be well-formed and unambiguous.
//!
//! Restoring onto the *same* rank count reinstalls the partition and the
//! monitor snapshots bit-for-bit. Restoring onto a *different* rank count
//! (the shrink-onto-survivors path) starts from
//! [`BlockPartition::uniform`] and fresh monitors — a redistribution plan
//! cannot cross rank counts, and fresh monitors keep the recovered run
//! deterministic and identical to a clean start from the same blob.

use stance_balance::MonitorSnapshot;
use stance_onedim::{Arrangement, BlockPartition};
use stance_sim::Element;

/// The blob's magic number.
const MAGIC: &[u8; 4] = b"STCK";

/// The current blob format version. Bumped 1 → 2 when field records
/// became name-keyed.
const VERSION: u32 = 2;

/// Wire size of one encoded [`MonitorSnapshot`]: a presence-flags byte,
/// eight `f64`s (three optional costs + five movement moments) and the
/// observation counter.
const SNAPSHOT_BYTES: usize = 1 + 8 * 8 + 4;

/// Replicated session recovery state — see the module docs for the role
/// it plays and the wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint<E: Element> {
    pub(crate) n: usize,
    pub(crate) block_sizes: Vec<usize>,
    pub(crate) arrangement: Vec<usize>,
    pub(crate) monitors: Vec<MonitorSnapshot>,
    pub(crate) primary_name: String,
    pub(crate) values: Vec<E>,
    pub(crate) aux: Vec<(String, Vec<E>)>,
}

impl<E: Element> SessionCheckpoint<E> {
    /// Total number of elements.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The rank count the checkpoint was taken at.
    pub fn num_procs(&self) -> usize {
        self.block_sizes.len()
    }

    /// The partition at checkpoint time.
    pub fn partition(&self) -> BlockPartition {
        BlockPartition::from_sizes_with_arrangement(
            &self.block_sizes,
            Arrangement::new(self.arrangement.clone()),
        )
    }

    /// Per-rank monitor snapshots (indexed by checkpoint-time rank).
    pub fn monitors(&self) -> &[MonitorSnapshot] {
        &self.monitors
    }

    /// The name of the primary field (the legacy session records its
    /// value array as `"values"`; a dataflow session uses the graph's
    /// first registered field name).
    pub fn primary_name(&self) -> &str {
        &self.primary_name
    }

    /// The checkpointed primary field, in global order.
    pub fn values(&self) -> &[E] {
        &self.values
    }

    /// The checkpointed auxiliary fields: `(name, global-order data)`
    /// records, in checkpoint order.
    pub fn aux(&self) -> &[(String, Vec<E>)] {
        &self.aux
    }

    /// The names of every recorded field (primary first), in checkpoint
    /// order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.primary_name.as_str()).chain(self.aux.iter().map(|(n, _)| n.as_str()))
    }

    /// Looks a field up **by name** (primary or auxiliary); the
    /// global-order data if recorded.
    pub fn field(&self, name: &str) -> Option<&[E]> {
        if name == self.primary_name {
            return Some(&self.values);
        }
        self.aux
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| a.as_slice())
    }

    /// Serializes the checkpoint to its versioned byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let p = self.num_procs();
        let elem = E::SIZE_BYTES;
        let name_bytes: usize =
            4 + self.primary_name.len() + self.aux.iter().map(|(n, _)| 4 + n.len()).sum::<usize>();
        let mut out = Vec::with_capacity(
            28 + name_bytes + p * (12 + SNAPSHOT_BYTES) + (1 + self.aux.len()) * self.n * elem,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(elem as u32).to_le_bytes());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.extend_from_slice(&(p as u32).to_le_bytes());
        out.extend_from_slice(&(self.aux.len() as u32).to_le_bytes());
        write_name(&self.primary_name, &mut out);
        for &s in &self.block_sizes {
            out.extend_from_slice(&(s as u64).to_le_bytes());
        }
        for &q in &self.arrangement {
            out.extend_from_slice(&(q as u32).to_le_bytes());
        }
        for snap in &self.monitors {
            write_snapshot(snap, &mut out);
        }
        E::pack_into(&self.values, &mut out);
        for (name, a) in &self.aux {
            write_name(name, &mut out);
            E::pack_into(a, &mut out);
        }
        out
    }

    /// Deserializes a checkpoint written by [`SessionCheckpoint::to_bytes`].
    ///
    /// # Panics
    /// Panics with a descriptive message if the blob is truncated, has the
    /// wrong magic or version, was written for a different element size,
    /// or carries malformed or duplicated field names — a corrupt
    /// checkpoint must never restore silently.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut c = Cursor { bytes, at: 0 };
        assert_eq!(c.take(4), MAGIC, "not a STANCE checkpoint (bad magic)");
        let version = c.u32();
        assert_eq!(version, VERSION, "unsupported checkpoint version {version}");
        let elem = c.u32() as usize;
        assert_eq!(
            elem,
            E::SIZE_BYTES,
            "checkpoint holds {elem}-byte elements, expected {}",
            E::SIZE_BYTES
        );
        let n = c.u64() as usize;
        let p = c.u32() as usize;
        let aux_count = c.u32() as usize;
        assert!(p > 0, "checkpoint has no ranks");
        let primary_name = read_name(&mut c);
        let block_sizes: Vec<usize> = (0..p).map(|_| c.u64() as usize).collect();
        assert_eq!(
            block_sizes.iter().sum::<usize>(),
            n,
            "checkpoint block sizes do not tile the list"
        );
        let arrangement: Vec<usize> = (0..p).map(|_| c.u32() as usize).collect();
        let monitors: Vec<MonitorSnapshot> = (0..p).map(|_| read_snapshot(&mut c)).collect();
        let mut values = vec![E::zero(); n];
        E::unpack_into(c.take(n * elem), &mut values);
        let aux: Vec<(String, Vec<E>)> = (0..aux_count)
            .map(|_| {
                let name = read_name(&mut c);
                let mut a = vec![E::zero(); n];
                E::unpack_into(c.take(n * elem), &mut a);
                (name, a)
            })
            .collect();
        assert_eq!(c.at, bytes.len(), "checkpoint has trailing garbage");
        let names: Vec<&str> = std::iter::once(primary_name.as_str())
            .chain(aux.iter().map(|(n, _)| n.as_str()))
            .collect();
        for (i, name) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(name),
                "checkpoint field {name:?} appears more than once"
            );
        }
        SessionCheckpoint {
            n,
            block_sizes,
            arrangement,
            monitors,
            primary_name,
            values,
            aux,
        }
    }
}

/// Appends one length-prefixed field name.
fn write_name(name: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

/// Reads one length-prefixed field name back, rejecting malformed keys.
fn read_name(c: &mut Cursor<'_>) -> String {
    let len = c.u32() as usize;
    let name = std::str::from_utf8(c.take(len)).expect("checkpoint field name is not UTF-8");
    assert!(!name.is_empty(), "checkpoint field name is empty");
    name.to_string()
}

/// Appends one snapshot's fixed [`SNAPSHOT_BYTES`]-long wire form.
pub(crate) fn write_snapshot(snap: &MonitorSnapshot, out: &mut Vec<u8>) {
    let flags = u8::from(snap.per_item.is_some())
        | u8::from(snap.rebuild_cost.is_some()) << 1
        | u8::from(snap.remap_cost.is_some()) << 2;
    out.push(flags);
    out.extend_from_slice(&snap.per_item.unwrap_or(0.0).to_le_bytes());
    out.extend_from_slice(&snap.rebuild_cost.unwrap_or(0.0).to_le_bytes());
    out.extend_from_slice(&snap.remap_cost.unwrap_or(0.0).to_le_bytes());
    for m in &snap.movement {
        out.extend_from_slice(&m.to_le_bytes());
    }
    out.extend_from_slice(&snap.movement_obs.to_le_bytes());
}

/// Reads one snapshot back.
fn read_snapshot(c: &mut Cursor<'_>) -> MonitorSnapshot {
    let flags = c.take(1)[0];
    let per_item = c.f64();
    let rebuild = c.f64();
    let remap = c.f64();
    let movement = [c.f64(), c.f64(), c.f64(), c.f64(), c.f64()];
    let movement_obs = c.u32();
    MonitorSnapshot {
        per_item: (flags & 1 != 0).then_some(per_item),
        rebuild_cost: (flags & 2 != 0).then_some(rebuild),
        remap_cost: (flags & 4 != 0).then_some(remap),
        movement,
        movement_obs,
    }
}

/// Reads one rank's checkpoint contribution (the allgather payload):
/// a snapshot followed by that rank's slice of every field.
pub(crate) fn read_contribution(bytes: &[u8]) -> (MonitorSnapshot, &[u8]) {
    let mut c = Cursor { bytes, at: 0 };
    let snap = read_snapshot(&mut c);
    (snap, &bytes[c.at..])
}

/// A bounds-checked little-endian reader.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> &'a [u8] {
        assert!(
            self.at + len <= self.bytes.len(),
            "checkpoint truncated at byte {} (wanted {len} more of {})",
            self.at,
            self.bytes.len()
        );
        let s = &self.bytes[self.at..self.at + len];
        self.at += len;
        s
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("exact chunk"))
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("exact chunk"))
    }

    fn f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("exact chunk"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionCheckpoint<f64> {
        SessionCheckpoint {
            n: 5,
            block_sizes: vec![3, 2],
            arrangement: vec![1, 0],
            monitors: vec![
                MonitorSnapshot {
                    per_item: Some(1.5e-6),
                    rebuild_cost: None,
                    remap_cost: Some(0.25),
                    movement: [1.0, 2.0, 3.0, 4.0, 5.0],
                    movement_obs: 7,
                },
                MonitorSnapshot {
                    per_item: None,
                    rebuild_cost: Some(0.125),
                    remap_cost: None,
                    movement: [0.0; 5],
                    movement_obs: 0,
                },
            ],
            primary_name: "values".to_string(),
            values: vec![1.0, -2.0, 3.5, f64::MIN_POSITIVE, 0.0],
            aux: vec![("residual".to_string(), vec![9.0, 8.0, 7.0, 6.0, 5.0])],
        }
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = SessionCheckpoint::<f64>::from_bytes(&bytes);
        assert_eq!(back, ck);
        assert_eq!(back.partition().sizes(), ck.partition().sizes());
    }

    #[test]
    fn fields_are_looked_up_by_name() {
        let ck = sample();
        assert_eq!(ck.field("values"), Some(ck.values()));
        assert_eq!(ck.field("residual"), Some(ck.aux()[0].1.as_slice()));
        assert_eq!(ck.field("nope"), None);
        let names: Vec<&str> = ck.field_names().collect();
        assert_eq!(names, ["values", "residual"]);
    }

    #[test]
    fn partition_reconstructs_arrangement() {
        let ck = sample();
        let part = ck.partition();
        // Block 0 (3 elements) belongs to proc 1 under arrangement [1, 0].
        assert_eq!(part.interval_of(1).len(), 3);
        assert_eq!(part.interval_of(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "bad magic")]
    fn rejects_foreign_blobs() {
        let _ = SessionCheckpoint::<f64>::from_bytes(b"NOPE\0\0\0\0");
    }

    #[test]
    #[should_panic(expected = "unsupported checkpoint version 1")]
    fn rejects_unnamed_v1_blobs() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 1;
        let _ = SessionCheckpoint::<f64>::from_bytes(&bytes);
    }

    #[test]
    #[should_panic(expected = "unsupported checkpoint version")]
    fn rejects_future_versions() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        let _ = SessionCheckpoint::<f64>::from_bytes(&bytes);
    }

    #[test]
    #[should_panic(expected = "expected 16")]
    fn rejects_wrong_element_size() {
        let bytes = sample().to_bytes();
        let _ = SessionCheckpoint::<[f64; 2]>::from_bytes(&bytes);
    }

    #[test]
    #[should_panic(expected = "appears more than once")]
    fn rejects_duplicate_field_names() {
        let mut ck = sample();
        ck.aux.push(("values".to_string(), vec![0.0; 5]));
        let _ = SessionCheckpoint::<f64>::from_bytes(&ck.to_bytes());
    }

    #[test]
    #[should_panic(expected = "field name is empty")]
    fn rejects_empty_field_names() {
        let mut ck = sample();
        ck.aux[0].0 = String::new();
        let _ = SessionCheckpoint::<f64>::from_bytes(&ck.to_bytes());
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn rejects_truncation() {
        let bytes = sample().to_bytes();
        let _ = SessionCheckpoint::<f64>::from_bytes(&bytes[..bytes.len() - 3]);
    }

    #[test]
    #[should_panic(expected = "trailing garbage")]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        let _ = SessionCheckpoint::<f64>::from_bytes(&bytes);
    }
}
