//! Reproducible builders for the paper's experimental scenarios (§5).
//!
//! The evaluation ran on up to five SUN4 workstations on Ethernet, solving
//! 500 iterations of the Fig. 8 loop over a 30 269-vertex unstructured mesh
//! indexed by recursive spectral bisection. These builders construct the
//! equivalent simulated setups so benches, examples and tests share one
//! source of truth.

use stance_locality::{meshgen, Graph, OrderingMethod};
use stance_sim::{ClusterSpec, LoadTimeline, NetworkSpec};

use crate::prepare_mesh;

/// Iterations of the parallel loop in the paper's experiments.
pub const PAPER_ITERATIONS: usize = 500;

/// The iteration count between load-balance checks in the paper's adaptive
/// experiment ("the loop was executed for 10 iterations. A check was made
/// after 10 iterations").
pub const PAPER_CHECK_INTERVAL: usize = 10;

/// The Fig. 9 substitute mesh, already renumbered along the given 1-D
/// indexing (the paper used "Recursive Spectral Bisection-based indexing").
pub fn paper_mesh_ordered(method: OrderingMethod, seed: u64) -> Graph {
    let raw = meshgen::paper_mesh(seed);
    prepare_mesh(&raw, method).0
}

/// A smaller stand-in with the same construction (for quick runs and debug
/// builds): ~3k vertices, same sparsity regime, labels shuffled like a real
/// mesh file.
pub fn small_mesh_ordered(method: OrderingMethod, seed: u64) -> Graph {
    let grid = meshgen::triangulated_grid(56, 56, 0.6, seed);
    let target = grid.num_vertices() * 3 / 2;
    let thinned = meshgen::thin_to_edges(&grid, target, seed ^ 0xABCD);
    let shuffled = meshgen::shuffle_labels(&thinned, seed ^ 0x51AB);
    prepare_mesh(&shuffled, method).0
}

/// The static test-bed of Tables 4–5: `p` equal workstations on 10 Mbit/s
/// **shared-bus** Ethernet. The shared medium is what makes efficiency fall
/// as workstations are added (Table 4): all gather transmissions serialize
/// on the wire. (Bus arbitration order depends on host scheduling, so
/// repeated runs can differ by a transmission's worth of virtual time —
/// tests needing exact determinism use the point-to-point model instead.)
pub fn static_cluster(p: usize) -> ClusterSpec {
    ClusterSpec::paper_cluster(p).with_network(NetworkSpec::ethernet_10mbit_shared())
}

/// The adaptive test-bed of Table 5: the static cluster with "a constant
/// competing load … added to one of the processors (processor 1)". Two
/// competing CPU-bound processes pin workstation 1 (our rank 0) at 1/3
/// availability, matching the paper's 97.61 s → 290.93 s sequential
/// slowdown.
pub fn adaptive_cluster(p: usize) -> ClusterSpec {
    static_cluster(p).with_load(0, LoadTimeline::competing_load(0.0, f64::INFINITY, 2))
}

/// The paper's initial-value convention for the Fig. 8 loop is not
/// specified; any smooth function works. We use a deterministic mix of
/// coordinates of the global index so results are reproducible.
pub fn initial_value(g: usize) -> f64 {
    let x = g as f64;
    (x * 0.01).sin() * 10.0 + (x * 0.003).cos() * 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mesh_reasonable() {
        let m = small_mesh_ordered(OrderingMethod::Rcb, 5);
        assert_eq!(m.num_vertices(), 3136);
        assert!(m.is_connected());
        let avg_deg = 2.0 * m.num_edges() as f64 / m.num_vertices() as f64;
        assert!(avg_deg > 2.5 && avg_deg < 3.5, "avg degree {avg_deg}");
    }

    #[test]
    fn adaptive_cluster_loads_rank0_only() {
        let spec = adaptive_cluster(3);
        let caps = spec.capabilities_at(stance_sim::VTime::ZERO);
        assert!(caps[0] < caps[1]);
        assert!((caps[1] - caps[2]).abs() < 1e-12);
        // Rank 0 at 1/3 of the others.
        assert!((caps[0] * 3.0 - caps[1]).abs() < 1e-12);
    }

    #[test]
    fn initial_values_deterministic() {
        assert_eq!(initial_value(42), initial_value(42));
        assert_ne!(initial_value(1), initial_value(2));
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(PAPER_ITERATIONS, 500);
        assert_eq!(PAPER_CHECK_INTERVAL, 10);
    }
}
