//! Multi-field dataflow sessions: named fields + kernel-stage DAGs with
//! fused ghost exchange.
//!
//! [`AdaptiveSession`](crate::AdaptiveSession) drives one kernel over one
//! array; real adaptive applications (the CG example already) sweep
//! *several* kernels over *several* per-vertex arrays each outer
//! iteration. This module is the session API redesigned around that
//! shape:
//!
//! * a [`FieldSet`] — the registry of **named** per-vertex arrays
//!   (name → [`GhostedArray`]), replacing the positional aux-array
//!   convention of `check_and_rebalance_with`;
//! * a [`StageGraph`] — kernel stages declaring which field they read and
//!   which they write, validated at build time by the
//!   [`stance_verify`] dataflow audit (duplicate names, undeclared
//!   accesses, dependency cycles) and scheduled deterministically in
//!   topological order;
//! * a [`DataflowSession`] — the runtime that earns the API: ghost
//!   gathers for fields exchanged at the same dataflow point are **fused
//!   into one message per neighbor per pass**
//!   ([`gather_fused`] on `TAG_GATHER_FUSED`), gathers for fields whose
//!   writers have not run since the last exchange are **skipped**
//!   (dirty-tracking), and an exchange overlaps the next stage's
//!   interior sweep through the split-phase
//!   [`gather_fused_start`]/[`gather_fused_finish`] pair when
//!   `StanceConfig::with_overlap(true)` is set.
//!
//! ## Exchange points, fusion and skipping
//!
//! At build time every *gathered* read is assigned an **exchange point**:
//! immediately after the latest stage (in topological order) that writes
//! the field — or the start of the pass if no stage writes it before the
//! reader. Reads assigned to the same point form one **fusion group**; at
//! runtime the group is filtered by per-field dirty flags (set when a
//! stage commits a field or the host calls
//! [`DataflowSession::set_local`], cleared by the gather) and the
//! surviving fields travel in **one** message per neighbor. A field
//! nobody re-wrote drops out of its group; a field nobody reads is never
//! gathered at all.
//!
//! All of this is replicated SPMD state — the graph is identical on every
//! rank and host writes are collective — so the dirty filter agrees
//! across ranks and the fused wire format (one segment per selected
//! field, in group order) always matches.
//!
//! Fusion changes *message count*, never bytes or values: results are
//! bitwise identical to per-field gathers
//! ([`StageGraphBuilder::with_fused_exchange`] keeps the unfused
//! spelling available as the measurement baseline), and a one-field,
//! one-stage graph reproduces [`AdaptiveSession`](crate::AdaptiveSession)
//! bit-for-bit — including its load-balance decisions.

use stance_balance::{
    load_balance_step_measured, Decision, LoadMonitor, MeasuredCosts, RemapScratch,
};
use stance_executor::{
    gather, gather_fused, gather_fused_finish, gather_fused_start, sweep_phase, CommBuffers,
    ComputeCostModel, GhostedArray, Kernel, LoopStats, SweepTeam,
};
use stance_inspector::{CommSchedule, LocalAdjacency, TranslatedAdjacency};
use stance_locality::Graph;
use stance_onedim::BlockPartition;
use stance_sim::tags::TAG_CHECKPOINT;
use stance_sim::{Comm, Element, Payload};
use stance_verify::{
    analyze_collective, audit_collective, audit_redistribution, audit_stage_graph, expect_clean,
    topological_order, Diagnostic, MaybeChecked, RankTrace, StageDecl,
};

use crate::checkpoint::SessionCheckpoint;
use crate::config::StanceConfig;
use crate::session::{build_schedule, SessionReport};

/// The registry of a session's named per-vertex arrays: one
/// [`GhostedArray`] per field, addressed by name, plus the per-field
/// dirty flag the fused exchange uses to skip gathers of fields whose
/// writers have not run. Field 0 is the session's *primary* field (the
/// first one registered) — the one whose block the remap pipeline moves
/// in place of the legacy session's `values`.
pub struct FieldSet<E: Element = f64> {
    names: Vec<String>,
    pub(crate) arrays: Vec<GhostedArray<E>>,
    /// `dirty[f]` — field `f`'s owned block changed since its ghosts were
    /// last gathered. Starts all-true (initial values were never
    /// exchanged).
    pub(crate) dirty: Vec<bool>,
}

impl<E: Element> FieldSet<E> {
    /// Number of registered fields.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the set is empty (never true for a built session — a
    /// stage graph requires at least one field).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The field names, in registration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The registration index of `name`, if registered.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// This rank's owned values of field `name` (in interval order).
    ///
    /// # Panics
    /// Panics if no field of that name is registered.
    pub fn local(&self, name: &str) -> &[E] {
        self.arrays[self.must_index(name)].local()
    }

    /// Replaces this rank's owned values of field `name` and marks the
    /// field dirty, so its next gathered read re-exchanges ghosts. Host
    /// writes are collective by convention: every rank must update the
    /// same fields between the same passes, or the replicated dirty
    /// filter (and with it the fused wire format) diverges.
    ///
    /// # Panics
    /// Panics if no field of that name is registered, or if `values`
    /// does not match the rank's current interval.
    pub fn set_local(&mut self, name: &str, values: &[E]) {
        let i = self.must_index(name);
        self.arrays[i].set_local(values);
        self.dirty[i] = true;
    }

    fn must_index(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("no field named {name:?} (fields: {:?})", self.names))
    }
}

/// One built stage: the kernel plus its resolved field indices.
struct Stage<E: Element> {
    name: String,
    kernel: Box<dyn Kernel<E>>,
    /// Index of the field the kernel sweeps over.
    input: usize,
    /// Whether the input is read through its ghosts (and therefore needs
    /// an exchange) or owned entries only.
    gathered: bool,
    /// Index of the field the sweep's output commits to.
    output: usize,
}

/// A builder-stage before name resolution.
struct StageSpec<E: Element> {
    name: String,
    kernel: Box<dyn Kernel<E>>,
    input: String,
    gathered: bool,
    output: String,
}

/// Declares a [`StageGraph`]: register fields with
/// [`StageGraphBuilder::field`], then stages with
/// [`StageGraphBuilder::stage`] (ghost-reading input) or
/// [`StageGraphBuilder::stage_local`] (owned-only input).
/// [`StageGraphBuilder::build`] validates the declaration through the
/// [`stance_verify`] dataflow audit and computes the deterministic
/// schedule; [`StageGraphBuilder::validate`] exposes the diagnostics
/// without panicking.
pub struct StageGraphBuilder<E: Element = f64> {
    fields: Vec<String>,
    stages: Vec<StageSpec<E>>,
    fused: bool,
}

impl<E: Element> Default for StageGraphBuilder<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Element> StageGraphBuilder<E> {
    /// An empty builder with the fused exchange enabled.
    pub fn new() -> Self {
        StageGraphBuilder {
            fields: Vec::new(),
            stages: Vec::new(),
            fused: true,
        }
    }

    /// Registers a named per-vertex field. Registration order is the
    /// [`FieldSet`] order; the first field is the session's primary.
    pub fn field(mut self, name: &str) -> Self {
        self.fields.push(name.to_string());
        self
    }

    /// Declares a stage that sweeps `kernel` over field `reads` —
    /// through its **ghosts**, so the runtime exchanges the field's
    /// boundary before the stage runs — and commits the output to field
    /// `writes`. `reads == writes` declares an in-place update (the
    /// relaxation pattern) and creates no self-dependency.
    pub fn stage(
        mut self,
        name: &str,
        kernel: impl Kernel<E> + 'static,
        reads: &str,
        writes: &str,
    ) -> Self {
        self.stages.push(StageSpec {
            name: name.to_string(),
            kernel: Box::new(kernel),
            input: reads.to_string(),
            gathered: true,
            output: writes.to_string(),
        });
        self
    }

    /// Like [`StageGraphBuilder::stage`], but the kernel promises to
    /// read **owned** entries of `reads` only (e.g. a pointwise
    /// preconditioner), so the field needs no ghost exchange for this
    /// stage and never triggers one.
    pub fn stage_local(
        mut self,
        name: &str,
        kernel: impl Kernel<E> + 'static,
        reads: &str,
        writes: &str,
    ) -> Self {
        self.stages.push(StageSpec {
            name: name.to_string(),
            kernel: Box::new(kernel),
            input: reads.to_string(),
            gathered: false,
            output: writes.to_string(),
        });
        self
    }

    /// Selects the exchange flavour: `true` (the default) fuses every
    /// dataflow point's gathers into one message per neighbor; `false`
    /// issues one plain per-field gather per dirty field at the same
    /// points. Values are bitwise identical either way — the unfused
    /// spelling exists as the measurement baseline (`bench_dag`).
    pub fn with_fused_exchange(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// The declaration's dataflow diagnostics (empty means
    /// [`StageGraphBuilder::build`] will succeed): duplicate field or
    /// stage names, reads/writes of unregistered fields, dependency
    /// cycles. See [`stance_verify::audit_stage_graph`].
    pub fn validate(&self) -> Vec<Diagnostic> {
        audit_stage_graph(&self.fields, &self.decls())
    }

    /// Validates the declaration and computes the deterministic stage
    /// schedule and exchange plan.
    ///
    /// # Panics
    /// Panics with the full diagnostic report if the declaration is
    /// invalid, or if no field or no stage was registered.
    pub fn build(self) -> StageGraph<E> {
        assert!(
            !self.fields.is_empty(),
            "a stage graph needs at least one field"
        );
        assert!(
            !self.stages.is_empty(),
            "a stage graph needs at least one stage"
        );
        let diags = self.validate();
        expect_clean("stage-graph validation", &diags);
        let decls = self.decls();
        let order = topological_order(&decls).expect("audit rejected cyclic graphs");
        let field_index = |name: &str| {
            self.fields
                .iter()
                .position(|f| f == name)
                .expect("audit resolved every access")
        };
        let stages: Vec<Stage<E>> = self
            .stages
            .into_iter()
            .map(|s| Stage {
                input: field_index(&s.input),
                output: field_index(&s.output),
                name: s.name,
                kernel: s.kernel,
                gathered: s.gathered,
            })
            .collect();
        // Exchange plan: a gathered read of field f at topological
        // position r re-exchanges f's ghosts right after f's latest
        // prior writer — or at the start of the pass if no stage before
        // r writes f (the read consumes last pass's / the host's
        // version). Reads sharing a point form one fusion group.
        let mut plan: Vec<Vec<usize>> = vec![Vec::new(); stages.len()];
        for (pos_r, &sr) in order.iter().enumerate() {
            let stage = &stages[sr];
            if !stage.gathered {
                continue;
            }
            let f = stage.input;
            let point = (0..pos_r)
                .rev()
                .find(|&pos_w| stages[order[pos_w]].output == f)
                .map_or(0, |pos_w| pos_w + 1);
            if !plan[point].contains(&f) {
                plan[point].push(f);
            }
        }
        for group in &mut plan {
            // Canonical (replicated) segment order within a fused message.
            group.sort_unstable();
        }
        StageGraph {
            fields: self.fields,
            stages,
            order,
            plan,
            fused: self.fused,
        }
    }

    fn decls(&self) -> Vec<StageDecl> {
        self.stages
            .iter()
            .map(|s| StageDecl {
                name: s.name.clone(),
                reads: vec![s.input.clone()],
                writes: vec![s.output.clone()],
            })
            .collect()
    }
}

/// A validated stage DAG with its deterministic schedule and exchange
/// plan, ready to drive a [`DataflowSession`]. Built by
/// [`StageGraphBuilder::build`]; identical on every rank by construction
/// (it is plain replicated data).
pub struct StageGraph<E: Element = f64> {
    /// Field names, registration order (index = [`FieldSet`] index).
    fields: Vec<String>,
    /// Stages, declaration order.
    stages: Vec<Stage<E>>,
    /// Execution schedule: `order[pos]` is the declaration index of the
    /// stage run at topological position `pos`.
    order: Vec<usize>,
    /// `plan[pos]` — field indices whose ghosts are exchanged (one fused
    /// message per neighbor) immediately before the stage at position
    /// `pos` runs, before dirty filtering. Sorted ascending.
    plan: Vec<Vec<usize>>,
    fused: bool,
}

impl<E: Element> StageGraph<E> {
    /// The registered field names, registration order.
    pub fn field_names(&self) -> &[String] {
        &self.fields
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Whether exchanges are fused (one message per neighbor per
    /// dataflow point) or issued per field.
    pub fn fused(&self) -> bool {
        self.fused
    }

    /// Stage names in execution (topological) order.
    pub fn execution_order(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|&i| self.stages[i].name.as_str())
    }

    /// The fields whose ghosts are exchanged immediately before `stage`
    /// runs (one fused message per neighbor carries all of them), before
    /// dirty filtering.
    ///
    /// # Panics
    /// Panics if no stage of that name exists.
    pub fn fields_gathered_before(&self, stage: &str) -> Vec<&str> {
        let pos = self
            .order
            .iter()
            .position(|&i| self.stages[i].name == stage)
            .unwrap_or_else(|| panic!("no stage named {stage:?}"));
        self.plan[pos]
            .iter()
            .map(|&f| self.fields[f].as_str())
            .collect()
    }
}

/// One rank's state for a multi-field adaptive computation: the
/// [`StageGraph`]'s schedule driven over a [`FieldSet`], with the same
/// load-balance/remap/checkpoint machinery as
/// [`AdaptiveSession`](crate::AdaptiveSession) — except that *every*
/// field is named, moves through remaps automatically, and is
/// checkpointed under its name. All communicating methods are
/// collectives (the SPMD contract of §2).
pub struct DataflowSession<E: Element = f64> {
    partition: BlockPartition,
    adj: LocalAdjacency,
    graph: StageGraph<E>,
    schedule: CommSchedule,
    tadj: TranslatedAdjacency,
    fields: FieldSet<E>,
    /// Recycled dirty-filtered fusion group (field indices).
    group: Vec<usize>,
    /// Combined-size sweep scratch shared by all stages: the owned prefix
    /// receives sweep outputs and commits by swapping storage with the
    /// output field's array (stale ghost suffixes are rewritten by the
    /// next gather before any read — the `LoopRunner` argument).
    sweep_scratch: Vec<E>,
    bufs: CommBuffers<E>,
    /// Recycled staging for the non-primary fields' owned blocks during a
    /// remap (the primary moves through `RemapScratch` directly).
    aux_staging: Vec<Vec<E>>,
    monitor: LoadMonitor,
    config: StanceConfig,
    scratch: RemapScratch<E>,
    verify: Option<Box<RankTrace>>,
    /// The rank's worker team (`StanceConfig::with_team`), shared by all
    /// stages; `None` for the single-lane default.
    team: Option<SweepTeam<E>>,
}

impl<E: Element> DataflowSession<E> {
    /// Collective setup with an equal-share initial decomposition.
    /// `init(name, g)` supplies the initial value of field `name` at
    /// global element `g`.
    pub fn setup<C: Comm>(
        env: &mut C,
        mesh: &Graph,
        graph: StageGraph<E>,
        init: impl Fn(&str, usize) -> E,
        config: &StanceConfig,
    ) -> Self {
        let partition = BlockPartition::uniform(mesh.num_vertices(), env.size());
        Self::setup_with_partition(env, mesh, partition, graph, init, config)
    }

    /// Collective setup with an explicit initial partition.
    pub fn setup_with_partition<C: Comm>(
        env: &mut C,
        mesh: &Graph,
        partition: BlockPartition,
        graph: StageGraph<E>,
        init: impl Fn(&str, usize) -> E,
        config: &StanceConfig,
    ) -> Self {
        assert_eq!(
            partition.num_procs(),
            env.size(),
            "partition has {} blocks for {} ranks",
            partition.num_procs(),
            env.size()
        );
        assert_eq!(
            partition.n(),
            mesh.num_vertices(),
            "partition covers {} elements for a {}-vertex graph",
            partition.n(),
            mesh.num_vertices()
        );
        let adj = LocalAdjacency::extract(mesh, &partition, env.rank());
        let mut scratch = RemapScratch::new();
        let mut verify = config
            .verify
            .then(|| Box::new(RankTrace::new(env.rank(), env.size())));
        let schedule = {
            let mut env = MaybeChecked::new(env, verify.as_deref_mut());
            build_schedule(&mut env, &partition, &adj, config, &mut scratch.schedule)
        };
        let tadj = schedule.translate_adjacency(&adj);
        let bufs = CommBuffers::for_schedule(&schedule);
        if verify.is_some() {
            let diags = audit_collective(env, partition.n(), &schedule, &adj, &tadj);
            expect_clean("post-setup schedule audit", &diags);
        }
        let iv = partition.interval_of(env.rank());
        let ghosts = schedule.num_ghosts() as usize;
        let arrays: Vec<GhostedArray<E>> = graph
            .fields
            .iter()
            .map(|name| {
                GhostedArray::from_local(iv.iter().map(|g| init(name, g)).collect(), ghosts)
            })
            .collect();
        let k = graph.fields.len();
        let fields = FieldSet {
            names: graph.fields.clone(),
            arrays,
            dirty: vec![true; k],
        };
        let sweep_scratch = vec![E::zero(); tadj.buffer_len()];
        let team = (config.team_threads > 1).then(|| {
            let mut team = SweepTeam::new(config.team_threads);
            team.rebuild_splits(&tadj);
            team
        });
        DataflowSession {
            partition,
            adj,
            graph,
            schedule,
            tadj,
            fields,
            group: Vec::with_capacity(k),
            sweep_scratch,
            bufs,
            aux_staging: Vec::new(),
            monitor: LoadMonitor::with_estimator(config.monitor_window, config.estimator),
            config: config.clone(),
            scratch,
            verify,
            team,
        }
    }

    /// The current partition.
    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }

    /// The current communication schedule (shared by every field — the
    /// fields live on one mesh, so one inspector pass serves all).
    pub fn schedule(&self) -> &CommSchedule {
        &self.schedule
    }

    /// The stage graph driving this session.
    pub fn stage_graph(&self) -> &StageGraph<E> {
        &self.graph
    }

    /// The named field registry.
    pub fn fields(&self) -> &FieldSet<E> {
        &self.fields
    }

    /// This rank's owned values of field `name` — see [`FieldSet::local`].
    pub fn local(&self, name: &str) -> &[E] {
        self.fields.local(name)
    }

    /// Replaces this rank's owned values of field `name` and marks it
    /// dirty — see [`FieldSet::set_local`].
    pub fn set_local(&mut self, name: &str, values: &[E]) {
        self.fields.set_local(name, values);
    }

    /// Runs a block of `passes` full passes — each pass executes every
    /// stage once, in the graph's topological order, with fused
    /// (dirty-filtered) exchanges at the planned points — and records
    /// the load measurement. Collective.
    pub fn run_block<C: Comm>(&mut self, env: &mut C, passes: usize) -> LoopStats {
        let DataflowSession {
            graph,
            schedule,
            tadj,
            fields,
            group,
            sweep_scratch,
            bufs,
            monitor,
            config,
            verify,
            team,
            ..
        } = self;
        let mut env = MaybeChecked::new(env, verify.as_deref_mut());
        let mut stats = LoopStats::default();
        for _ in 0..passes {
            stats.compute_time += run_one_pass(
                &mut env,
                graph,
                schedule,
                tadj,
                fields,
                group,
                sweep_scratch,
                bufs,
                &config.compute_cost,
                config.overlap_gather,
                team.as_mut(),
            );
            stats.iterations += 1;
        }
        monitor.record(
            stats.compute_time,
            stats.iterations,
            fields.arrays[0].local_len(),
        );
        stats
    }

    /// One load-balance check (and remap, if the controller finds it
    /// profitable) — every registered field moves to the new
    /// distribution automatically. Returns `(remapped, check_cost,
    /// rebalance_cost)`. Collective.
    pub fn check_and_rebalance<C: Comm>(
        &mut self,
        env: &mut C,
        remaining_passes: usize,
    ) -> (bool, f64, f64) {
        let per_item = self.monitor.per_item_for_check().unwrap_or(0.0);
        let measured = if self.config.calibrate_rebuild_cost {
            MeasuredCosts {
                rebuild: self.monitor.rebuild_cost(),
                movement: self
                    .monitor
                    .movement_model(self.config.balancer.redist_model),
            }
        } else {
            MeasuredCosts::none()
        };
        let t0 = env.now_secs();
        let decision = {
            let mut env = MaybeChecked::new(env, self.verify.as_deref_mut());
            load_balance_step_measured(
                &mut env,
                &self.partition,
                per_item,
                remaining_passes,
                &self.config.balancer,
                measured,
            )
        };
        let check_cost = env.now_secs() - t0;
        match decision {
            Decision::Keep => (false, check_cost, 0.0),
            Decision::Remap(new_partition) => {
                let t1 = env.now_secs();
                self.apply_remap(env, new_partition);
                (true, check_cost, env.now_secs() - t1)
            }
        }
    }

    /// The monitor's current per-item time estimate (seconds per element
    /// per pass), if any measurement or carried estimate exists.
    pub fn per_item_estimate(&self) -> Option<f64> {
        self.monitor.per_item_time()
    }

    /// Forces a remap to an explicitly chosen partition, moving **every**
    /// field and rebuilding the schedule, without consulting the
    /// controller. Collective; an identity remap is a no-op.
    ///
    /// # Panics
    /// Panics if `new_partition` does not cover the same list with the
    /// same number of ranks.
    pub fn remap_to<C: Comm>(&mut self, env: &mut C, new_partition: BlockPartition) {
        assert_eq!(
            new_partition.num_procs(),
            self.partition.num_procs(),
            "partition rank count changed"
        );
        assert_eq!(new_partition.n(), self.partition.n(), "list length changed");
        self.apply_remap(env, new_partition);
    }

    /// Moves every field and the structure to `new_partition` and
    /// rebuilds the schedule and transport scratch — the multi-field
    /// counterpart of the legacy session's remap: the primary field's
    /// block travels through [`RemapScratch`] directly, the others stage
    /// through recycled buffers, and all of them ride the same coalesced
    /// message per destination. After the move every dirty flag is set:
    /// ghost regions are rebuilt empty, so every field's next gathered
    /// read re-exchanges.
    fn apply_remap<C: Comm>(&mut self, env: &mut C, new_partition: BlockPartition) {
        if new_partition == self.partition {
            return;
        }
        let t0 = env.now_secs();
        let (moved_messages, moved_elements);
        let plan = self.scratch.take_plan(&self.partition, &new_partition);
        let mut trace = self.verify.take();
        if trace.is_some() {
            let diags = audit_redistribution(&self.partition, &new_partition, &plan);
            expect_clean("redistribution-plan audit", &diags);
        }
        {
            let mut env = MaybeChecked::new(env, trace.as_deref_mut());
            let extra = self.fields.arrays.len() - 1;
            self.aux_staging.resize_with(extra, Vec::new);
            for (staged, f) in self.aux_staging.iter_mut().zip(&self.fields.arrays[1..]) {
                staged.clear();
                staged.extend_from_slice(f.local());
            }
            let mut aux_refs: Vec<&mut Vec<E>> = self.aux_staging.iter_mut().collect();
            self.scratch.redistribute(
                &mut env,
                &self.partition,
                &new_partition,
                &plan,
                self.fields.arrays[0].local(),
                &mut aux_refs,
            );
            let new_adj = self.scratch.redistribute_adjacency(
                &mut env,
                &self.partition,
                &new_partition,
                &plan,
                &self.adj,
            );
            moved_messages = plan.num_messages();
            moved_elements = plan.elements_moved();
            self.scratch.put_plan(plan);
            let old_adj = std::mem::replace(&mut self.adj, new_adj);
            self.scratch.recycle_adjacency(old_adj);
        }
        self.partition = new_partition;

        let t_rebuild = env.now_secs();
        self.monitor
            .record_movement_cost(moved_messages, moved_elements, t_rebuild - t0);
        let schedule = {
            let mut env = MaybeChecked::new(env, trace.as_deref_mut());
            build_schedule(
                &mut env,
                &self.partition,
                &self.adj,
                &self.config,
                &mut self.scratch.schedule,
            )
        };
        schedule.translate_adjacency_into(&self.adj, &mut self.tadj);
        self.bufs.rebuild(&schedule);
        let retired = std::mem::replace(&mut self.schedule, schedule);
        self.scratch.schedule.recycle(retired);
        let ghosts = self.schedule.num_ghosts() as usize;
        self.fields.arrays[0].rebuild_from(self.scratch.primary_block(), ghosts);
        for (f, staged) in self.fields.arrays[1..].iter_mut().zip(&self.aux_staging) {
            f.rebuild_from(staged, ghosts);
        }
        self.sweep_scratch.resize(self.tadj.buffer_len(), E::zero());
        // Lane splits derive from the new run classification; the team's
        // threads and staging capacity are recycled.
        if let Some(team) = &mut self.team {
            team.rebuild_splits(&self.tadj);
        }
        for d in &mut self.fields.dirty {
            *d = true;
        }
        let now = env.now_secs();
        self.monitor.record_remap_cost(now - t_rebuild, now - t0);
        self.verify = trace;
        if self.verify.is_some() {
            let diags = audit_collective(
                env,
                self.partition.n(),
                &self.schedule,
                &self.adj,
                &self.tadj,
            );
            expect_clean("post-remap schedule audit", &diags);
        }
        self.monitor.rollover();
    }

    /// Checkpoints the session collectively: allgathers every rank's
    /// recovery state (monitor snapshot + every field's owned block) on
    /// `TAG_CHECKPOINT` and assembles the same replicated
    /// [`SessionCheckpoint`] on every rank. Every field is recorded
    /// **under its name** — the blob identifies fields by name, not
    /// position, and [`DataflowSession::restore`] validates the names
    /// against the restoring graph.
    pub fn checkpoint<C: Comm>(&mut self, env: &mut C) -> SessionCheckpoint<E> {
        let mut bytes = Vec::new();
        crate::checkpoint::write_snapshot(&self.monitor.snapshot(), &mut bytes);
        for f in &self.fields.arrays {
            E::pack_into(f.local(), &mut bytes);
        }
        let parts = {
            let mut env = MaybeChecked::new(env, self.verify.as_deref_mut());
            env.allgather(TAG_CHECKPOINT, Payload::from_bytes(bytes))
        };
        let n = self.partition.n();
        let p = self.partition.num_procs();
        let k = self.fields.arrays.len();
        let mut monitors = Vec::with_capacity(p);
        let mut globals: Vec<Vec<E>> = (0..k).map(|_| vec![E::zero(); n]).collect();
        for (rank, payload) in parts.into_iter().enumerate() {
            let b = payload.into_bytes();
            let (snap, rest) = crate::checkpoint::read_contribution(&b);
            monitors.push(snap);
            let riv = self.partition.interval_of(rank);
            let vb = riv.len() * E::SIZE_BYTES;
            for (i, g) in globals.iter_mut().enumerate() {
                E::unpack_into(&rest[i * vb..(i + 1) * vb], &mut g[riv.start..riv.end]);
            }
        }
        let mut globals = globals.into_iter();
        let values = globals.next().expect("a graph has at least one field");
        let aux = self.graph.fields[1..]
            .iter()
            .cloned()
            .zip(globals)
            .collect();
        SessionCheckpoint {
            n,
            block_sizes: self.partition.block_sizes(),
            arrangement: self.partition.arrangement().as_slice().to_vec(),
            monitors,
            primary_name: self.graph.fields[0].clone(),
            values,
            aux,
        }
    }

    /// Collective restore from a [`SessionCheckpoint`], onto **any** rank
    /// count (same semantics as the legacy session's restore: same width
    /// reinstalls partition and monitors bit-for-bit, a different width
    /// starts uniform with fresh monitors). The checkpoint's field
    /// records are matched to the graph **by name**: a checkpoint
    /// missing a graph field, holding an unknown field, or naming a
    /// different primary is rejected — never zipped by position.
    ///
    /// # Panics
    /// Panics if `mesh` does not have the checkpoint's element count or
    /// the field names do not match the graph exactly.
    pub fn restore<C: Comm>(
        env: &mut C,
        mesh: &Graph,
        graph: StageGraph<E>,
        ckpt: &SessionCheckpoint<E>,
        config: &StanceConfig,
    ) -> Self {
        assert_eq!(
            mesh.num_vertices(),
            ckpt.n(),
            "checkpoint covers {} elements for a {}-vertex graph",
            ckpt.n(),
            mesh.num_vertices()
        );
        assert_eq!(
            ckpt.primary_name(),
            graph.fields[0],
            "checkpoint primary field {:?} does not match graph field {:?}",
            ckpt.primary_name(),
            graph.fields[0]
        );
        assert_eq!(
            ckpt.aux().len(),
            graph.fields.len() - 1,
            "checkpoint holds {} auxiliary fields for a {}-field graph",
            ckpt.aux().len(),
            graph.fields.len()
        );
        for name in &graph.fields[1..] {
            assert!(
                ckpt.field(name).is_some(),
                "checkpoint is missing field {name:?}"
            );
        }
        let same_width = env.size() == ckpt.num_procs();
        let partition = if same_width {
            ckpt.partition()
        } else {
            BlockPartition::uniform(ckpt.n(), env.size())
        };
        let mut session = Self::setup_with_partition(
            env,
            mesh,
            partition,
            graph,
            |name, g| ckpt.field(name).expect("names validated above")[g],
            config,
        );
        if same_width {
            session
                .monitor
                .restore_snapshot(&ckpt.monitors()[env.rank()]);
        }
        session
    }

    /// Analyzes the protocol traces recorded so far — identical
    /// semantics to
    /// [`AdaptiveSession::verify_protocol`](crate::AdaptiveSession::verify_protocol).
    pub fn verify_protocol<C: Comm>(&mut self, env: &mut C) -> Vec<Diagnostic> {
        match self.verify.as_deref() {
            None => Vec::new(),
            Some(trace) => analyze_collective(env, trace),
        }
    }

    /// The protocol trace recorded so far — `Some` iff the session was
    /// set up with `StanceConfig::with_verification(true)`.
    pub fn trace(&self) -> Option<&RankTrace> {
        self.verify.as_deref()
    }

    /// The paper's full execution structure over passes: blocks of
    /// `check_interval` passes separated by load-balance checks, for
    /// `total_passes` passes. Collective.
    pub fn run_adaptive<C: Comm>(&mut self, env: &mut C, total_passes: usize) -> SessionReport {
        let mut report = SessionReport::default();
        let mut done = 0;
        while done < total_passes {
            let block = self.config.check_interval.min(total_passes - done);
            let stats = self.run_block(env, block);
            done += block;
            report.iterations += stats.iterations;
            report.compute_time += stats.compute_time;
            if done < total_passes && self.config.load_balancing_enabled() {
                let (remapped, check, rebalance) =
                    self.check_and_rebalance(env, total_passes - done);
                report.checks += 1;
                report.check_cost += check;
                if remapped {
                    report.remaps += 1;
                    report.rebalance_cost += rebalance;
                }
            }
        }
        report.total_time = env.now_secs();
        report
    }
}

/// One pass: every stage once, in topological order, with the planned
/// (dirty-filtered) exchange before each stage. Returns the pass's
/// compute-sweep seconds (the load monitor's sample). The per-stage
/// structure mirrors `LoopRunner::apply` exactly — gather (or split
/// start), charge, sweep, (finish, charge, sweep boundary) — so a
/// one-field, one-stage graph is bitwise **and** clockwise identical to
/// the legacy runner.
#[allow(clippy::too_many_arguments)]
fn run_one_pass<E: Element, C: Comm>(
    env: &mut C,
    graph: &StageGraph<E>,
    schedule: &CommSchedule,
    tadj: &TranslatedAdjacency,
    fields: &mut FieldSet<E>,
    group: &mut Vec<usize>,
    sweep_scratch: &mut Vec<E>,
    bufs: &mut CommBuffers<E>,
    cost: &ComputeCostModel,
    overlap: bool,
    mut team: Option<&mut SweepTeam<E>>,
) -> f64 {
    let local_len = tadj.len();
    let mut compute_time = 0.0;
    for (pos, &si) in graph.order.iter().enumerate() {
        let stage = &graph.stages[si];
        group.clear();
        group.extend(graph.plan[pos].iter().copied().filter(|&f| fields.dirty[f]));
        let kernel = stage.kernel.as_ref();
        if graph.fused && overlap && !group.is_empty() {
            gather_fused_start(env, schedule, &fields.arrays, group, cost, bufs);
            if stage.gathered && group.contains(&stage.input) {
                // The exchange in flight carries this stage's own input:
                // sweep the interior (no ghost references) while the
                // bytes travel, land them, sweep the boundary.
                let interior_work = kernel.cost(cost, tadj.num_interior(), tadj.interior_refs());
                let boundary_work = kernel.cost(cost, tadj.num_boundary(), tadj.boundary_refs());
                let t0 = env.now_secs();
                env.compute(interior_work);
                match team.as_deref_mut() {
                    Some(t) => t.sweep_interior(
                        kernel,
                        tadj,
                        fields.arrays[stage.input].combined(),
                        &mut sweep_scratch[..local_len],
                    ),
                    None => sweep_phase(
                        kernel,
                        tadj,
                        fields.arrays[stage.input].combined(),
                        &mut sweep_scratch[..local_len],
                        tadj.interior_runs(),
                    ),
                }
                let interior_time = env.now_secs() - t0;
                gather_fused_finish(env, schedule, &mut fields.arrays, group, cost, bufs);
                let t1 = env.now_secs();
                env.compute(boundary_work);
                sweep_phase(
                    kernel,
                    tadj,
                    fields.arrays[stage.input].combined(),
                    &mut sweep_scratch[..local_len],
                    tadj.boundary_runs(),
                );
                compute_time += interior_time + env.now_secs() - t1;
            } else {
                // The in-flight fields are not read by this stage (its
                // input's ghosts are already clean, or it reads owned
                // entries only): the whole sweep overlaps the exchange.
                let work = kernel.cost(cost, local_len, tadj.num_refs());
                let t0 = env.now_secs();
                env.compute(work);
                match team.as_deref_mut() {
                    Some(t) => t.sweep_full(
                        kernel,
                        tadj,
                        fields.arrays[stage.input].combined(),
                        &mut sweep_scratch[..local_len],
                    ),
                    None => kernel.sweep(
                        tadj,
                        fields.arrays[stage.input].combined(),
                        &mut sweep_scratch[..local_len],
                    ),
                }
                compute_time += env.now_secs() - t0;
                gather_fused_finish(env, schedule, &mut fields.arrays, group, cost, bufs);
            }
        } else {
            if graph.fused {
                gather_fused(env, schedule, &mut fields.arrays, group, cost, bufs);
            } else {
                for &f in group.iter() {
                    gather(env, schedule, &mut fields.arrays[f], cost, bufs);
                }
            }
            let work = kernel.cost(cost, local_len, tadj.num_refs());
            let t0 = env.now_secs();
            env.compute(work);
            match team.as_deref_mut() {
                Some(t) => t.sweep_full(
                    kernel,
                    tadj,
                    fields.arrays[stage.input].combined(),
                    &mut sweep_scratch[..local_len],
                ),
                None => kernel.sweep(
                    tadj,
                    fields.arrays[stage.input].combined(),
                    &mut sweep_scratch[..local_len],
                ),
            }
            compute_time += env.now_secs() - t0;
        }
        for &f in group.iter() {
            fields.dirty[f] = false;
        }
        fields.arrays[stage.output].swap_data(sweep_scratch);
        fields.dirty[stage.output] = true;
    }
    compute_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::session::AdaptiveSession;
    use stance_executor::{sequential_relaxation, RelaxationKernel};
    use stance_locality::meshgen;

    fn init(g: usize) -> f64 {
        (g as f64).cos() * 5.0
    }

    fn mesh() -> Graph {
        let raw = meshgen::triangulated_grid(12, 10, 0.4, 3);
        crate::prepare_mesh(&raw, OrderingMethod::Rcb).0
    }

    fn test_balancer() -> BalancerConfig {
        BalancerConfig {
            redist_model: RedistCostModel {
                per_message: 1.0e-4,
                per_element: 1.0e-7,
            },
            rebuild_cost_hint: 1.0e-4,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        }
    }

    /// A one-stage relaxation graph over field `y`.
    fn relax_graph(fused: bool) -> StageGraph<f64> {
        StageGraphBuilder::new()
            .field("y")
            .stage("relax", RelaxationKernel, "y", "y")
            .with_fused_exchange(fused)
            .build()
    }

    #[test]
    fn builder_orders_stages_and_plans_exchanges() {
        let g: StageGraph<f64> = StageGraphBuilder::new()
            .field("r")
            .field("u")
            .field("w")
            // Declared out of dependency order on purpose.
            .stage("matvec", RelaxationKernel, "u", "w")
            .stage_local("precond", RelaxationKernel, "r", "u")
            .build();
        let order: Vec<&str> = g.execution_order().collect();
        assert_eq!(order, ["precond", "matvec"]);
        // u is written by precond, so its exchange sits between the two
        // stages; nothing is exchanged before precond (it reads owned
        // entries only).
        assert_eq!(g.fields_gathered_before("precond"), Vec::<&str>::new());
        assert_eq!(g.fields_gathered_before("matvec"), vec!["u"]);
        assert!(g.fused());
    }

    #[test]
    #[should_panic(expected = "stage-graph validation")]
    fn build_rejects_cycles() {
        let _ = StageGraphBuilder::<f64>::new()
            .field("a")
            .field("b")
            .stage("fwd", RelaxationKernel, "a", "b")
            .stage("bwd", RelaxationKernel, "b", "a")
            .build();
    }

    #[test]
    #[should_panic(expected = "stage-graph validation")]
    fn build_rejects_undeclared_fields() {
        let _ = StageGraphBuilder::<f64>::new()
            .field("y")
            .stage("relax", RelaxationKernel, "ghost", "y")
            .build();
    }

    /// A one-field, one-stage dataflow session must reproduce the legacy
    /// `AdaptiveSession` bit-for-bit — values, partitions, and the
    /// controller's remap decisions — under forced load.
    #[test]
    fn single_stage_graph_is_a_faithful_adapter() {
        let m = mesh();
        let iters = 40;
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer = test_balancer();
        let spec = || {
            ClusterSpec::uniform(3)
                .with_network(NetworkSpec::zero_cost())
                .with_load(0, LoadTimeline::constant(1.0 / 3.0))
        };
        let legacy: Vec<_> = {
            let (m, config) = (m.clone(), config.clone());
            Cluster::new(spec())
                .run(move |env| {
                    let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
                    let rep = s.run_adaptive(env, iters);
                    (rep, s.local_values().to_vec(), s.partition().sizes())
                })
                .into_results()
        };
        let dataflow: Vec<_> = Cluster::new(spec())
            .run(move |env| {
                let mut s =
                    DataflowSession::setup(env, &m, relax_graph(true), |_, g| init(g), &config);
                let rep = s.run_adaptive(env, iters);
                (rep, s.local("y").to_vec(), s.partition().sizes())
            })
            .into_results();
        assert!(legacy[0].0.remaps >= 1, "load must force a remap");
        for (l, d) in legacy.iter().zip(&dataflow) {
            assert_eq!(l.0.remaps, d.0.remaps, "remap decisions diverged");
            assert_eq!(l.1, d.1, "values diverged");
            assert_eq!(l.2, d.2, "partitions diverged");
        }
    }

    /// Two independent relaxation fields and one inert field: both relax
    /// fields must match the sequential reference bitwise, the inert
    /// field must stay untouched — and, fused, each pass moves exactly
    /// one gather message per neighbor (half the unfused count), while
    /// the inert field is never gathered at all.
    #[test]
    fn multi_field_passes_fuse_skip_and_match_sequential() {
        let m = mesh();
        let n = m.num_vertices();
        let passes = 12;
        let mut exp_y: Vec<f64> = (0..n).map(init).collect();
        let mut exp_z: Vec<f64> = (0..n).map(|g| init(g) * 2.0 + 1.0).collect();
        sequential_relaxation(&m, &mut exp_y, passes);
        sequential_relaxation(&m, &mut exp_z, passes);

        let run = |fused: bool| {
            let m = m.clone();
            let config = StanceConfig::free();
            let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
            Cluster::new(spec)
                .run(move |env| {
                    let graph = StageGraphBuilder::new()
                        .field("y")
                        .field("z")
                        .field("inert")
                        .stage("relax_y", RelaxationKernel, "y", "y")
                        .stage("relax_z", RelaxationKernel, "z", "z")
                        .with_fused_exchange(fused)
                        .build();
                    let mut s = DataflowSession::setup(
                        env,
                        &m,
                        graph,
                        |name, g| match name {
                            "y" => init(g),
                            "z" => init(g) * 2.0 + 1.0,
                            _ => g as f64,
                        },
                        &config,
                    );
                    s.run_block(env, passes);
                    (
                        s.local("y").to_vec(),
                        s.local("z").to_vec(),
                        s.local("inert").to_vec(),
                        env.stats().messages_sent,
                        s.partition().clone(),
                    )
                })
                .into_results()
        };
        let fused = run(true);
        let unfused = run(false);
        let part = fused[0].4.clone();
        let mut got_y = vec![0.0; n];
        let mut got_z = vec![0.0; n];
        for (rank, (y, z, inert, _, _)) in fused.iter().enumerate() {
            let iv = part.interval_of(rank);
            got_y[iv.start..iv.end].copy_from_slice(y);
            got_z[iv.start..iv.end].copy_from_slice(z);
            for (offset, g) in iv.iter().enumerate() {
                assert_eq!(inert[offset], g as f64, "inert field changed");
            }
        }
        assert_eq!(got_y, exp_y, "field y diverged");
        assert_eq!(got_z, exp_z, "field z diverged");
        for ((fy, fz, _, fmsgs, _), (uy, uz, _, umsgs, _)) in fused.iter().zip(&unfused) {
            assert_eq!(fy, uy, "fused vs unfused y diverged");
            assert_eq!(fz, uz, "fused vs unfused z diverged");
            // Both relax fields share the pass-start exchange point, so
            // fusion halves the gather traffic; setup messages are
            // identical between the runs and cancel in the comparison.
            assert!(
                fmsgs < umsgs,
                "fusion must reduce message count: {fmsgs} vs {umsgs}"
            );
        }
    }

    /// A field whose writer never runs is gathered once (the initial
    /// exchange) and then skipped: after the first pass, passes move no
    /// messages for it.
    #[test]
    fn clean_fields_skip_their_gathers() {
        let m = mesh();
        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            // `coeff` is read through its ghosts but never written, so
            // only the first pass exchanges it.
            let graph = StageGraphBuilder::new()
                .field("coeff")
                .field("out")
                .stage("apply", RelaxationKernel, "coeff", "out")
                .build();
            let mut s = DataflowSession::setup(env, &m, graph, |_, g| init(g), &config);
            s.run_block(env, 1);
            let after_first = env.stats().messages_sent;
            s.run_block(env, 3);
            let after_rest = env.stats().messages_sent;
            // Re-dirtying the field by a collective host write brings the
            // exchange back for exactly one pass.
            let poked: Vec<f64> = s.local("coeff").iter().map(|v| v + 1.0).collect();
            s.set_local("coeff", &poked);
            s.run_block(env, 1);
            let after_poke = env.stats().messages_sent;
            s.run_block(env, 1);
            let after_quiet = env.stats().messages_sent;
            (
                after_first,
                after_rest,
                after_poke,
                after_quiet,
                s.schedule().sends().len(),
            )
        });
        for (first, rest, poke, quiet, neighbors) in report.results() {
            assert_eq!(first, rest, "clean field must not be re-gathered");
            if *neighbors > 0 {
                assert!(poke > rest, "set_local must re-dirty the field");
            }
            assert_eq!(poke, quiet, "the poke is worth exactly one exchange");
        }
    }

    /// Overlapped multi-field run stays bitwise identical to the
    /// synchronous one (the split changes when bytes are waited on,
    /// never what arrives).
    #[test]
    fn overlapped_passes_are_bitwise_identical() {
        let m = mesh();
        let run = |overlap: bool| {
            let m = m.clone();
            let config = StanceConfig::free().with_overlap(overlap);
            let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
            Cluster::new(spec)
                .run(move |env| {
                    let graph = StageGraphBuilder::new()
                        .field("y")
                        .field("z")
                        .stage("relax_y", RelaxationKernel, "y", "y")
                        .stage("relax_z", RelaxationKernel, "z", "z")
                        .build();
                    let mut s = DataflowSession::setup(
                        env,
                        &m,
                        graph,
                        |name, g| if name == "y" { init(g) } else { -init(g) },
                        &config,
                    );
                    s.run_block(env, 10);
                    (s.local("y").to_vec(), s.local("z").to_vec())
                })
                .into_results()
        };
        assert_eq!(run(false), run(true), "overlap changed values");
    }

    /// A worker team must not change any dataflow value: all four
    /// team × gather-flavour combinations produce identical bits, across
    /// a forced remap (which recomputes the lane splits).
    #[test]
    fn teamed_passes_are_bitwise_identical() {
        let m = mesh();
        let run = |team: usize, overlap: bool| {
            let m = m.clone();
            let config = StanceConfig::free().with_overlap(overlap).with_team(team);
            let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
            Cluster::new(spec)
                .run(move |env| {
                    let graph = StageGraphBuilder::new()
                        .field("y")
                        .field("z")
                        .stage("relax_y", RelaxationKernel, "y", "y")
                        .stage("relax_z", RelaxationKernel, "z", "z")
                        .build();
                    let mut s = DataflowSession::setup(
                        env,
                        &m,
                        graph,
                        |name, g| if name == "y" { init(g) } else { -init(g) },
                        &config,
                    );
                    s.run_block(env, 5);
                    s.remap_to(env, BlockPartition::from_sizes(&[50, 30, 40]));
                    s.run_block(env, 5);
                    (s.local("y").to_vec(), s.local("z").to_vec())
                })
                .into_results()
        };
        let reference = run(1, false);
        for team in [2usize, 4] {
            for overlap in [false, true] {
                assert_eq!(
                    run(team, overlap),
                    reference,
                    "team = {team}, overlap = {overlap} changed values"
                );
            }
        }
    }

    /// Every named field follows a forced remap chain onto the right
    /// owners, and values keep matching the sequential reference.
    #[test]
    fn all_fields_follow_forced_remaps() {
        let m = mesh();
        let n = m.num_vertices();
        let passes = 12;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, passes);

        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let graph = StageGraphBuilder::new()
                .field("y")
                .field("tag")
                .stage("relax", RelaxationKernel, "y", "y")
                .build();
            let mut s = DataflowSession::setup(
                env,
                &m,
                graph,
                |name, g| if name == "y" { init(g) } else { 3.0 * g as f64 },
                &config,
            );
            for sizes in [[20, 40, 60], [60, 40, 20]] {
                s.run_block(env, passes / 4);
                s.remap_to(env, BlockPartition::from_sizes(&sizes));
                s.run_block(env, passes / 4);
            }
            let iv = s.partition().interval_of(env.rank());
            for (offset, g) in iv.iter().enumerate() {
                assert_eq!(
                    s.local("tag")[offset],
                    3.0 * g as f64,
                    "field strayed during remap"
                );
            }
            (s.local("y").to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        let partition = results[0].1.clone();
        let blocks = results.into_iter().map(|(v, _)| v).collect();
        assert_eq!(
            crate::reassemble(&partition, blocks),
            expected,
            "remap chain diverged from sequential"
        );
    }

    /// Named checkpoint round trip: a restored session continues
    /// bitwise-identically, and restores against a graph whose field
    /// names do not match are rejected.
    #[test]
    fn named_checkpoint_round_trips_and_validates_names() {
        let m = mesh();
        let config = StanceConfig::free();
        let graph = || {
            StageGraphBuilder::new()
                .field("y")
                .field("z")
                .stage("relax_y", RelaxationKernel, "y", "y")
                .stage("relax_z", RelaxationKernel, "z", "z")
                .build()
        };
        let init2 = |name: &str, g: usize| if name == "y" { init(g) } else { -init(g) };
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let mut s = DataflowSession::setup(env, &m, graph(), init2, &config);
            s.run_block(env, 5);
            let ckpt = s.checkpoint(env);
            assert_eq!(ckpt.primary_name(), "y");
            assert_eq!(ckpt.aux().len(), 1);
            assert_eq!(ckpt.aux()[0].0, "z");
            s.run_block(env, 5);
            let mut r = DataflowSession::restore(env, &m, graph(), &ckpt, &config);
            r.run_block(env, 5);
            let same = s.local("y") == r.local("y") && s.local("z") == r.local("z");
            // The round trip survives the wire form too.
            let back = SessionCheckpoint::<f64>::from_bytes(&ckpt.to_bytes());
            (same, back == ckpt)
        });
        for (same, wire_same) in report.results() {
            assert!(same, "restored run diverged");
            assert!(wire_same, "wire round trip changed the checkpoint");
        }
    }

    #[test]
    #[should_panic(expected = "missing field")]
    fn restore_rejects_mismatched_field_names() {
        let m = mesh();
        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let graph = StageGraphBuilder::new()
                .field("y")
                .field("z")
                .stage("relax", RelaxationKernel, "y", "y")
                .stage("copy", RelaxationKernel, "z", "z")
                .build();
            let mut s = DataflowSession::setup(env, &m, graph, |_, g| init(g), &config);
            let ckpt = s.checkpoint(env);
            let renamed = StageGraphBuilder::new()
                .field("y")
                .field("w")
                .stage("relax", RelaxationKernel, "y", "y")
                .stage("copy", RelaxationKernel, "w", "w")
                .build();
            let _ = DataflowSession::restore(env, &m, renamed, &ckpt, &config);
        });
    }

    /// Verified multi-field run: audits and protocol analysis stay clean
    /// with fused exchanges on the new reserved tag.
    #[test]
    fn verified_dataflow_run_is_clean() {
        let m = mesh();
        let mut config = StanceConfig::default()
            .with_check_interval(10)
            .with_verification(true);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(|env| {
            let graph = StageGraphBuilder::new()
                .field("y")
                .field("z")
                .stage("relax_y", RelaxationKernel, "y", "y")
                .stage("relax_z", RelaxationKernel, "z", "z")
                .build();
            let mut s = DataflowSession::setup(
                env,
                &m,
                graph,
                |name, g| if name == "y" { init(g) } else { -init(g) },
                &config,
            );
            let rep = s.run_adaptive(env, 40);
            let diags = s.verify_protocol(env);
            (rep.remaps, diags, s.trace().map_or(0, |t| t.events.len()))
        });
        let results: Vec<_> = report.into_results();
        assert!(results[0].0 >= 1, "load should force a remap");
        for (rank, (_, diags, events)) in results.iter().enumerate() {
            assert!(diags.is_empty(), "rank {rank} diagnostics: {diags:?}");
            assert!(*events > 0, "rank {rank} recorded no events");
        }
    }
}
