//! Efficiency metrics for nonuniform environments (§4 of the paper).
//!
//! Classic speedup/efficiency assume identical processors. The paper defines
//! instead, for processors that would take `T(p_i)` to run the whole task
//! sequentially:
//!
//! ```text
//!                      1 / T(p₁, …, pₙ)
//! E(p₁, …, pₙ) =  ───────────────────────
//!                     Σᵢ  1 / T(pᵢ)
//! ```
//!
//! (collectively the machines complete `Σ 1/T(pᵢ)` tasks per unit time, so
//! the ratio is achieved throughput over ideal throughput), and for adaptive
//! environments `E = 1 / Σᵢ fᵢ(T)` where `fᵢ(T)` is the fraction of the task
//! processor `i` *could* have completed during the parallel run.

/// Static nonuniform efficiency: `parallel_time` is `T(p₁,…,pₙ)`;
/// `sequential_times[i]` is `T(pᵢ)`.
///
/// # Panics
/// Panics if any time is non-positive or the list is empty.
pub fn static_efficiency(parallel_time: f64, sequential_times: &[f64]) -> f64 {
    assert!(
        !sequential_times.is_empty(),
        "need at least one sequential time"
    );
    assert!(
        parallel_time > 0.0 && sequential_times.iter().all(|&t| t > 0.0),
        "times must be positive"
    );
    let ideal_rate: f64 = sequential_times.iter().map(|&t| 1.0 / t).sum();
    (1.0 / parallel_time) / ideal_rate
}

/// Adaptive efficiency: `could_have_completed[i]` is `fᵢ(T)`, the fraction
/// of the whole task processor `i` could have executed by itself during the
/// parallel run's duration (capability integrated over the run, divided by
/// the total work).
///
/// # Panics
/// Panics if the fractions are empty or any is negative.
pub fn adaptive_efficiency(could_have_completed: &[f64]) -> f64 {
    assert!(
        !could_have_completed.is_empty(),
        "need at least one fraction"
    );
    assert!(
        could_have_completed.iter().all(|&f| f >= 0.0),
        "fractions must be non-negative"
    );
    let total: f64 = could_have_completed.iter().sum();
    assert!(total > 0.0, "at least one processor must have capacity");
    1.0 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_reduces_to_classic() {
        // p identical machines, perfect speedup: E = 1.
        let seq = [100.0; 4];
        assert!((static_efficiency(25.0, &seq) - 1.0).abs() < 1e-12);
        // Half of ideal.
        assert!((static_efficiency(50.0, &seq) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nonuniform_weighting() {
        // A fast machine (T=50) and a slow one (T=100): ideal rate = 0.03.
        // Parallel at T=40 → E = (1/40)/0.03 = 0.8333.
        let e = static_efficiency(40.0, &[50.0, 100.0]);
        assert!((e - 0.833333333).abs() < 1e-6);
    }

    #[test]
    fn single_machine_perfect() {
        assert!((static_efficiency(100.0, &[100.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table4_shape() {
        // Table 4: T(1) = 97.61, five near-identical machines. At
        // T(1..5) = 31.50 the efficiency is ≈ 0.62.
        let seq = [97.61; 5];
        let e = static_efficiency(31.50, &seq);
        assert!((e - 0.6197).abs() < 0.01, "efficiency {e}");
    }

    #[test]
    fn adaptive_efficiency_basics() {
        // Two machines, each could have done 40% of the task: E = 1/0.8 =
        // 1.25 (super-unitary values flag that the run beat the estimate).
        assert!((adaptive_efficiency(&[0.4, 0.4]) - 1.25).abs() < 1e-12);
        // Each could have done the whole task: E = 0.5.
        assert!((adaptive_efficiency(&[1.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_times() {
        let _ = static_efficiency(0.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn rejects_zero_capacity() {
        let _ = adaptive_efficiency(&[0.0, 0.0]);
    }
}
