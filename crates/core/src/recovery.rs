//! Failure detection and the shrink-onto-survivors recovery protocol.
//!
//! The runtime's collectives assume every rank shows up; a dead rank
//! turns them into deadlocks. This module is the escape hatch: a
//! *membership probe* built entirely on the lossy/bounded primitives
//! ([`Comm::post`], [`Comm::recv_deadline`]), so it terminates no matter
//! who died, and a policy layer that turns the probe's verdict into a
//! recovery decision.
//!
//! The probe is two rounds:
//!
//! 1. **Heartbeats** — every rank posts a heartbeat to every other rank
//!    (`TAG_HEARTBEAT`), then waits for each peer's heartbeat with a
//!    bounded timeout, retried with exponential backoff per
//!    [`DetectorConfig`]. A peer whose mailbox is closed (it exited) or
//!    that stays silent past the full patience window is *suspected*.
//! 2. **Verdict** — every rank posts its suspicion bitmask to the peers
//!    it believes alive (`TAG_VERDICT`) and folds the masks it receives
//!    into its own. Because every surviving rank's round-1 mask reaches
//!    every other survivor, the folded verdict is **identical on all
//!    survivors**: a collective agreement on who is dead, reached without
//!    any collective primitive.
//!
//! With the verdict in hand, [`probe_and_decide`] applies the session's
//! [`RecoveryPolicy`]: fail fast (panic with the verdict), or hand back
//! the survivor list for the shrink path — wrap the backend in a
//! [`SurvivorComm`](stance_sim::SurvivorComm), restore the last
//! [`SessionCheckpoint`](crate::SessionCheckpoint) onto the contracted
//! rank space, and continue.
//!
//! False suspicion is possible on a wildly overloaded host (a live rank
//! slower than the whole patience window); the protocol then excludes it
//! like a dead one, which is safe — shrink-recovery never depends on the
//! excluded rank — but wasteful, so patience should comfortably exceed
//! worst-case scheduling noise. The probe supports up to 64 ranks (the
//! verdict travels as one `u64` bitmask).

use stance_sim::tags::{TAG_HEARTBEAT, TAG_VERDICT};
use stance_sim::{Comm, Payload};

use crate::config::{DetectorConfig, RecoveryPolicy, StanceConfig};

/// What a membership probe concluded, interpreted under a
/// [`RecoveryPolicy`] — see [`probe_and_decide`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Every rank answered: continue the computation unchanged.
    Continue,
    /// The verdict named dead ranks and the policy says to shrink onto
    /// the survivors (checkpoint-time ranks, ascending — exactly the
    /// list [`SurvivorComm::new`](stance_sim::SurvivorComm::new) wants).
    Shrink {
        /// The surviving ranks, in the original numbering.
        survivors: Vec<usize>,
    },
}

/// Probes cluster membership: returns `alive[q]` for every rank `q`,
/// **identical on every surviving rank** (see the module docs for the
/// two-round protocol). The caller's own entry is always `true`.
///
/// Terminates in bounded time regardless of who died: every wait is a
/// `recv_deadline` with at most [`DetectorConfig::total_patience_secs`]
/// of patience. Collective among survivors only — dead ranks are
/// neither waited on (past the patience window) nor required to
/// participate.
///
/// # Panics
/// Panics if the cluster has more than 64 ranks (the verdict bitmask is
/// a `u64`).
pub fn probe_membership<C: Comm>(env: &mut C, det: &DetectorConfig) -> Vec<bool> {
    let p = env.size();
    let me = env.rank();
    assert!(p <= 64, "membership probe supports at most 64 ranks");
    if p == 1 {
        return vec![true];
    }

    // Round 1: heartbeats out, then bounded waits in. Posting *all*
    // heartbeats before waiting on any keeps the round one-pass: by the
    // time the slowest rank starts waiting, every live peer's heartbeat
    // is already in flight.
    for q in 0..p {
        if q != me {
            env.post(q, TAG_HEARTBEAT, Payload::Empty);
        }
    }
    let mut suspected = 0u64;
    for q in 0..p {
        if q != me && recv_patient(env, q, TAG_HEARTBEAT, det).is_none() {
            suspected |= 1 << q;
        }
    }

    // Round 2: exchange suspicion masks with believed-alive peers and
    // fold. A peer that answered round 1 but misses round 2 (it died
    // between rounds) is folded in as dead too.
    for q in 0..p {
        if q != me && suspected & (1 << q) == 0 {
            env.post(q, TAG_VERDICT, Payload::from_u64(vec![suspected]));
        }
    }
    let mut verdict = suspected;
    for q in 0..p {
        if q == me || suspected & (1 << q) != 0 {
            continue;
        }
        match recv_patient(env, q, TAG_VERDICT, det) {
            Some(mask) => verdict |= mask.into_u64()[0],
            None => verdict |= 1 << q,
        }
    }
    (0..p).map(|q| q == me || verdict & (1 << q) == 0).collect()
}

/// One bounded wait with the detector's retry/backoff schedule: tries
/// `retries + 1` times, each timeout `backoff` times the previous.
fn recv_patient<C: Comm>(
    env: &mut C,
    src: usize,
    tag: stance_sim::Tag,
    det: &DetectorConfig,
) -> Option<Payload> {
    let mut timeout = det.timeout_secs;
    for _ in 0..=det.retries {
        if let Some(payload) = env.recv_deadline(src, tag, timeout) {
            return Some(payload);
        }
        timeout *= det.backoff;
    }
    None
}

/// The survivor list of a probe verdict: ranks still alive, ascending.
pub fn survivors_of(alive: &[bool]) -> Vec<usize> {
    (0..alive.len()).filter(|&q| alive[q]).collect()
}

/// Probes membership and applies the configured [`RecoveryPolicy`].
///
/// * Everyone alive → [`RecoveryAction::Continue`].
/// * Dead ranks under [`RecoveryPolicy::FailFast`] → panics with the
///   verdict (the default: losing a rank is an error, not an event).
/// * Dead ranks under [`RecoveryPolicy::Shrink`] or
///   [`RecoveryPolicy::RestoreAndShrink`] → [`RecoveryAction::Shrink`]
///   with the survivor list. The two policies differ in what the caller
///   does next: `Shrink` re-partitions live in-memory state (only sound
///   when the departing rank's data is recoverable elsewhere, e.g. a
///   graceful withdrawal), `RestoreAndShrink` restores the last
///   replicated checkpoint onto the survivors — the only option that
///   recovers a *crashed* rank's block.
pub fn probe_and_decide<C: Comm>(env: &mut C, config: &StanceConfig) -> RecoveryAction {
    let alive = probe_membership(env, &config.detector);
    if alive.iter().all(|&a| a) {
        return RecoveryAction::Continue;
    }
    let dead: Vec<usize> = (0..alive.len()).filter(|&q| !alive[q]).collect();
    match config.recovery {
        RecoveryPolicy::FailFast => panic!(
            "rank(s) {dead:?} failed (collective verdict) and the recovery policy is fail-fast"
        ),
        RecoveryPolicy::Shrink | RecoveryPolicy::RestoreAndShrink => RecoveryAction::Shrink {
            survivors: survivors_of(&alive),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_sim::{Cluster, ClusterSpec};

    fn fast_detector() -> DetectorConfig {
        DetectorConfig {
            timeout_secs: 0.05,
            retries: 2,
            backoff: 2.0,
        }
    }

    #[test]
    fn all_alive_probe_is_unanimous() {
        let det = fast_detector();
        let report =
            Cluster::new(ClusterSpec::uniform(4)).run(move |env| probe_membership(env, &det));
        for alive in report.results() {
            assert_eq!(alive, &vec![true; 4]);
        }
    }

    #[test]
    fn survivors_agree_on_a_dead_rank() {
        // Rank 2 exits immediately without participating; the other
        // three must each conclude exactly {0, 1, 3} alive.
        let det = fast_detector();
        let report = Cluster::new(ClusterSpec::uniform(4)).run(move |env| {
            if env.rank() == 2 {
                return Vec::new();
            }
            probe_membership(env, &det)
        });
        let results: Vec<_> = report.into_results();
        for (rank, alive) in results.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            assert_eq!(
                alive,
                &vec![true, true, false, true],
                "rank {rank} verdict diverged"
            );
            assert_eq!(survivors_of(alive), vec![0, 1, 3]);
        }
    }

    #[test]
    fn single_rank_probe_is_trivially_alive() {
        let det = fast_detector();
        let report =
            Cluster::new(ClusterSpec::uniform(1)).run(move |env| probe_membership(env, &det));
        assert_eq!(report.into_results(), vec![vec![true]]);
    }

    #[test]
    fn decide_continues_when_everyone_answers() {
        let config = StanceConfig::free();
        let report =
            Cluster::new(ClusterSpec::uniform(3)).run(move |env| probe_and_decide(env, &config));
        for action in report.results() {
            assert_eq!(action, &RecoveryAction::Continue);
        }
    }

    #[test]
    fn decide_shrinks_under_a_shrink_policy() {
        let config = StanceConfig::free()
            .with_recovery(RecoveryPolicy::RestoreAndShrink)
            .with_detector(fast_detector());
        let report = Cluster::new(ClusterSpec::uniform(3)).run(move |env| {
            if env.rank() == 1 {
                return None;
            }
            Some(probe_and_decide(env, &config))
        });
        for (rank, action) in report.into_results().into_iter().enumerate() {
            if rank == 1 {
                continue;
            }
            assert_eq!(
                action,
                Some(RecoveryAction::Shrink {
                    survivors: vec![0, 2]
                })
            );
        }
    }

    #[test]
    fn fail_fast_panics_with_the_verdict() {
        let config = StanceConfig::free().with_detector(fast_detector());
        let caught = std::panic::catch_unwind(|| {
            Cluster::new(ClusterSpec::uniform(2)).run(move |env| {
                if env.rank() == 1 {
                    return;
                }
                let _ = probe_and_decide(env, &config);
            });
        });
        assert!(caught.is_err(), "fail-fast must propagate the panic");
    }
}
