//! Top-level runtime configuration.

use stance_balance::{BalancerConfig, CapabilityEstimator};
use stance_executor::ComputeCostModel;
use stance_inspector::{InspectorCostModel, ScheduleStrategy};

/// What the runtime does when the failure detector reaches a verdict
/// that some rank is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Propagate the failure: surviving ranks panic with the verdict.
    /// The pre-fault behaviour, and the default — recovery is strictly
    /// opt-in.
    #[default]
    FailFast,
    /// Survivors renumber themselves densely (`SurvivorComm`) and
    /// continue from their **current** in-memory state, abandoning
    /// whatever the dead rank owned. Only correct for computations that
    /// can tolerate losing a block.
    Shrink,
    /// Survivors restore the last checkpoint onto the contracted rank
    /// count and continue — the lost block is reconstructed from the
    /// checkpoint, nothing is abandoned. Requires the application to
    /// have taken a checkpoint ([`crate::checkpoint::SessionCheckpoint`]).
    RestoreAndShrink,
}

/// Failure-detection tuning: how long a silent peer is waited on before
/// it is suspected, and how suspicion is retried before the collective
/// verdict. A dead peer (closed mailbox) is detected immediately
/// regardless of these settings; the timeout exists for the
/// wedged-but-alive case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Seconds a single heartbeat receive waits before suspecting the
    /// peer (wall clock on the native backend, charged virtual time on
    /// the simulator).
    pub timeout_secs: f64,
    /// How many additional bounded waits a suspected peer is granted
    /// before the suspicion stands.
    pub retries: u32,
    /// Multiplier applied to the timeout on each retry (≥ 1.0): a
    /// transiently slow peer gets geometrically more patience.
    pub backoff: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            timeout_secs: 0.2,
            retries: 2,
            backoff: 2.0,
        }
    }
}

impl DetectorConfig {
    /// Total worst-case seconds one peer can be waited on across the
    /// initial attempt and all retries.
    pub fn total_patience_secs(&self) -> f64 {
        let mut total = 0.0;
        let mut t = self.timeout_secs;
        for _ in 0..=self.retries {
            total += t;
            t *= self.backoff;
        }
        total
    }
}

/// Configuration for an [`AdaptiveSession`](crate::session::AdaptiveSession).
#[derive(Debug, Clone, PartialEq)]
pub struct StanceConfig {
    /// How communication schedules are built (Table 3's strategies).
    pub schedule_strategy: ScheduleStrategy,
    /// Pricing of kernel work on the reference machine.
    pub compute_cost: ComputeCostModel,
    /// Pricing of inspector work on the reference machine.
    pub inspector_cost: InspectorCostModel,
    /// Remap policy (profitability, MCR, movement model).
    pub balancer: BalancerConfig,
    /// Iterations between load-balance checks. "The frequency of this
    /// load-balancing check has to be set based on … the overhead of load
    /// balancing \[and\] the rate at which the underlying computational
    /// resources adapt" (§3.5). The paper's experiment used 10.
    pub check_interval: usize,
    /// Load-monitor window (blocks averaged for the capability estimate).
    pub monitor_window: usize,
    /// How the next phase's capability is predicted from the window (the
    /// paper uses the last phase; footnote 2 suggests multi-phase
    /// prediction, provided here as window averaging and linear trend).
    pub estimator: CapabilityEstimator,
    /// Whether the executor loop uses the split-phase gather: post the
    /// ghost exchange, sweep interior vertices while bytes are in flight,
    /// complete the exchange, sweep the boundary. Results are bitwise
    /// identical to the synchronous gather on every backend; only timing
    /// changes. Off by default — the synchronous path is the paper's
    /// structure and what the reproduction tables model.
    pub overlap_gather: bool,
    /// Whether the controller's profitability rule uses the **measured**
    /// schedule-rebuild cost instead of the static
    /// `BalancerConfig::rebuild_cost_hint`. Each remap brackets its
    /// rebuild with the backend clock (modelled seconds on the simulator,
    /// wall clock on the native backend) and feeds an EWMA; once at least
    /// one remap has been observed, checks charge that EWMA — the static
    /// hint remains the prior until then. Off by default so the paper's
    /// reproduction tables keep their modelled decision inputs
    /// byte-for-byte; turn it on for long-running adaptive workloads where
    /// the hint would drift from reality.
    pub calibrate_rebuild_cost: bool,
    /// Whether the session verifies the SPMD contract as it runs: every
    /// schedule build and remap is followed by a collective audit of the
    /// global schedule invariants (see `stance_verify::audit_schedules`),
    /// the redistribution plan of every remap is audited against the old
    /// and new partitions, and all session communication runs through a
    /// recording `CheckedComm` whose trace
    /// [`AdaptiveSession::verify_protocol`](crate::session::AdaptiveSession::verify_protocol)
    /// analyzes collectively. A violated invariant panics with the full
    /// diagnostic report. Verification never changes what is
    /// communicated — results stay bitwise identical — but costs audit
    /// messages and trace memory, so it is off by default; with it off,
    /// no verification machinery is even constructed.
    pub verify: bool,
    /// What to do when the failure detector concludes a rank is dead:
    /// fail fast (default — the pre-fault behaviour), shrink onto the
    /// survivors, or restore the last checkpoint onto the survivors.
    pub recovery: RecoveryPolicy,
    /// Failure-detection timeouts and retry policy (only consulted by
    /// the recovery paths; a run that never probes membership never
    /// reads it).
    pub detector: DetectorConfig,
    /// Compute lanes per rank — the intra-rank worker-team size. `1` (the
    /// default) keeps the paper's one-processor-per-rank model: every
    /// sweep runs on the rank thread and no worker threads exist. Larger
    /// values make each rank split its sweeps across a persistent team of
    /// parked threads (`stance_executor::SweepTeam`), with **bitwise
    /// identical** results for any value — set it via
    /// [`StanceConfig::with_team`] so the cost model stays in step.
    pub team_threads: usize,
}

impl Default for StanceConfig {
    fn default() -> Self {
        StanceConfig {
            schedule_strategy: ScheduleStrategy::Sort2,
            compute_cost: ComputeCostModel::sun4(),
            inspector_cost: InspectorCostModel::sun4(),
            balancer: BalancerConfig::default(),
            check_interval: 10,
            monitor_window: 4,
            estimator: CapabilityEstimator::default(),
            overlap_gather: false,
            calibrate_rebuild_cost: false,
            verify: false,
            recovery: RecoveryPolicy::default(),
            detector: DetectorConfig::default(),
            team_threads: 1,
        }
    }
}

impl StanceConfig {
    /// A configuration with zero-cost models: moves data correctly but
    /// charges no virtual time for compute or inspection. For structural
    /// tests.
    pub fn free() -> Self {
        StanceConfig {
            schedule_strategy: ScheduleStrategy::Sort2,
            compute_cost: ComputeCostModel::zero(),
            inspector_cost: InspectorCostModel::zero(),
            balancer: BalancerConfig::default(),
            check_interval: 10,
            monitor_window: 4,
            estimator: CapabilityEstimator::default(),
            overlap_gather: false,
            calibrate_rebuild_cost: false,
            verify: false,
            recovery: RecoveryPolicy::default(),
            detector: DetectorConfig::default(),
            team_threads: 1,
        }
    }

    /// Enables (or disables) runtime verification of the SPMD contract:
    /// schedule audits after every build/remap, redistribution-plan
    /// audits, and protocol tracing through `CheckedComm` (analyzed by
    /// [`AdaptiveSession::verify_protocol`](crate::session::AdaptiveSession::verify_protocol)).
    /// Results are bitwise identical either way; a violated invariant
    /// panics with the diagnostic report.
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Enables (or disables) the split-phase gather: the executor
    /// overlaps the ghost exchange with the interior sweep. Numerically
    /// free — results are bitwise identical either way.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap_gather = overlap;
        self
    }

    /// Sets the intra-rank worker-team size: each rank splits its sweeps
    /// across `lanes` compute lanes (the rank thread plus `lanes - 1`
    /// persistent worker threads). Numerically free — results are bitwise
    /// identical for any `lanes`, with either gather flavour, on both
    /// backends. The compute cost model's `team_lanes` is set in tandem so
    /// the simulated clock and the load balancer see the rank's effective
    /// speed; combine with `with_overlap` freely (the team accelerates the
    /// interior phase, the boundary phase stays on the rank thread).
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn with_team(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "a rank has at least one compute lane");
        self.team_threads = lanes;
        self.compute_cost = self.compute_cost.with_team(lanes);
        self
    }

    /// Enables (or disables) remap-cost calibration: once a remap has
    /// been observed, the profitability rule charges the measured
    /// schedule-rebuild EWMA instead of the static
    /// `BalancerConfig::rebuild_cost_hint` (which remains the prior until
    /// the first observation).
    pub fn with_calibration(mut self, calibrate: bool) -> Self {
        self.calibrate_rebuild_cost = calibrate;
        self
    }

    /// Sets the recovery policy: what survivors do when the failure
    /// detector concludes a rank is dead. The default
    /// ([`RecoveryPolicy::FailFast`]) is the pre-fault behaviour.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the failure-detection timeouts and retry policy.
    ///
    /// # Panics
    /// Panics if the timeout is not finite and positive or the backoff
    /// is below 1.0.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        assert!(
            detector.timeout_secs.is_finite() && detector.timeout_secs > 0.0,
            "detector timeout must be finite and positive, got {}",
            detector.timeout_secs
        );
        assert!(
            detector.backoff >= 1.0,
            "detector backoff must be at least 1.0, got {}",
            detector.backoff
        );
        self.detector = detector;
        self
    }

    /// Sets the schedule strategy.
    pub fn with_strategy(mut self, strategy: ScheduleStrategy) -> Self {
        self.schedule_strategy = strategy;
        self
    }

    /// Sets the check interval.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn with_check_interval(mut self, interval: usize) -> Self {
        assert!(interval >= 1, "check interval must be at least 1");
        self.check_interval = interval;
        self
    }

    /// Disables load balancing entirely (checks never run). Used for the
    /// "without load balancing" rows of Table 5.
    pub fn without_load_balancing(mut self) -> Self {
        self.check_interval = usize::MAX;
        self
    }

    /// Whether load balancing is enabled.
    pub fn load_balancing_enabled(&self) -> bool {
        self.check_interval != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = StanceConfig::default();
        assert_eq!(c.check_interval, 10);
        assert_eq!(c.schedule_strategy, ScheduleStrategy::Sort2);
        assert!(c.load_balancing_enabled());
    }

    #[test]
    fn builders() {
        let c = StanceConfig::free()
            .with_strategy(ScheduleStrategy::Sort1)
            .with_check_interval(25);
        assert_eq!(c.schedule_strategy, ScheduleStrategy::Sort1);
        assert_eq!(c.check_interval, 25);
        let off = StanceConfig::default().without_load_balancing();
        assert!(!off.load_balancing_enabled());
        assert!(!StanceConfig::default().overlap_gather);
        assert!(StanceConfig::default().with_overlap(true).overlap_gather);
        // Calibration is strictly opt-in: the default (and the free test
        // config) must keep the tables' static-hint decision inputs.
        assert!(!StanceConfig::default().calibrate_rebuild_cost);
        assert!(!StanceConfig::free().calibrate_rebuild_cost);
        assert!(
            StanceConfig::default()
                .with_calibration(true)
                .calibrate_rebuild_cost
        );
        // Verification is strictly opt-in: the default and free configs
        // must construct no checking machinery at all.
        assert!(!StanceConfig::default().verify);
        assert!(!StanceConfig::free().verify);
        assert!(StanceConfig::free().with_verification(true).verify);
        // Recovery is strictly opt-in: the default is the pre-fault
        // fail-fast behaviour.
        assert_eq!(StanceConfig::default().recovery, RecoveryPolicy::FailFast);
        assert_eq!(StanceConfig::free().recovery, RecoveryPolicy::FailFast);
        assert_eq!(
            StanceConfig::free()
                .with_recovery(RecoveryPolicy::RestoreAndShrink)
                .recovery,
            RecoveryPolicy::RestoreAndShrink
        );
        let det = DetectorConfig {
            timeout_secs: 0.05,
            retries: 1,
            backoff: 1.5,
        };
        assert_eq!(StanceConfig::free().with_detector(det).detector, det);
        // Teams are strictly opt-in (paper model: one processor per
        // rank), and with_team keeps the cost model in step.
        assert_eq!(StanceConfig::default().team_threads, 1);
        assert_eq!(StanceConfig::free().team_threads, 1);
        let teamed = StanceConfig::free().with_team(4);
        assert_eq!(teamed.team_threads, 4);
        assert_eq!(teamed.compute_cost.team_lanes, 4);
    }

    #[test]
    #[should_panic(expected = "at least one compute lane")]
    fn zero_team_rejected() {
        let _ = StanceConfig::default().with_team(0);
    }

    #[test]
    fn detector_patience_sums_geometric_backoff() {
        let det = DetectorConfig {
            timeout_secs: 0.1,
            retries: 2,
            backoff: 2.0,
        };
        // 0.1 + 0.2 + 0.4
        assert!((det.total_patience_secs() - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backoff must be at least")]
    fn sub_unit_backoff_rejected() {
        let _ = StanceConfig::free().with_detector(DetectorConfig {
            timeout_secs: 0.1,
            retries: 0,
            backoff: 0.5,
        });
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_interval_rejected() {
        let _ = StanceConfig::default().with_check_interval(0);
    }
}
