//! The adaptive session: Phases A–D wired together on each rank.
//!
//! An [`AdaptiveSession`] owns one rank's share of the computation — its
//! partition interval, mesh rows, communication schedule, ghosted values and
//! load monitor — and drives the paper's execution structure: blocks of
//! executor iterations separated by load-balance checks, with full remaps
//! (data movement + inspector re-run) when the controller finds one
//! profitable.
//!
//! All methods taking `&mut Env` are collectives: every rank of the cluster
//! must call them in the same order (the SPMD contract of §2).

use stance_balance::{
    load_balance_step, redistribute_adjacency, redistribute_values, Decision, LoadMonitor,
};
use stance_executor::{GhostedArray, LoopRunner};
use stance_inspector::{
    build_schedule_simple, build_schedule_symmetric, CommSchedule, LocalAdjacency,
    ScheduleStrategy,
};
use stance_locality::Graph;
use stance_onedim::BlockPartition;
use stance_sim::Env;

use crate::config::StanceConfig;

/// Aggregate timing of an adaptive run on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionReport {
    /// Executor iterations performed.
    pub iterations: usize,
    /// Virtual seconds in the compute sweep.
    pub compute_time: f64,
    /// Load-balance checks performed.
    pub checks: usize,
    /// Remaps performed.
    pub remaps: usize,
    /// Virtual seconds spent in checks (gather + decision + broadcast).
    pub check_cost: f64,
    /// Virtual seconds spent remapping (data movement + schedule rebuild).
    pub rebalance_cost: f64,
    /// This rank's clock when the run finished.
    pub total_time: f64,
}

/// One rank's state for the adaptive computation.
pub struct AdaptiveSession {
    partition: BlockPartition,
    adj: LocalAdjacency,
    runner: LoopRunner,
    values: GhostedArray,
    monitor: LoadMonitor,
    config: StanceConfig,
}

impl AdaptiveSession {
    /// Collective setup with an equal-share initial decomposition (the
    /// paper's adaptive experiment starts this way: "the graph was
    /// decomposed assuming all the processors had equal computational
    /// ratio"). `init(g)` provides the initial value of global element `g`.
    pub fn setup(
        env: &mut Env,
        graph: &Graph,
        init: impl Fn(usize) -> f64,
        config: &StanceConfig,
    ) -> Self {
        let partition = BlockPartition::uniform(graph.num_vertices(), env.size());
        Self::setup_with_partition(env, graph, partition, init, config)
    }

    /// Collective setup with an explicit initial partition (e.g. weighted by
    /// known machine speeds).
    pub fn setup_with_partition(
        env: &mut Env,
        graph: &Graph,
        partition: BlockPartition,
        init: impl Fn(usize) -> f64,
        config: &StanceConfig,
    ) -> Self {
        assert_eq!(
            partition.num_procs(),
            env.size(),
            "partition has {} blocks for {} ranks",
            partition.num_procs(),
            env.size()
        );
        assert_eq!(
            partition.n(),
            graph.num_vertices(),
            "partition covers {} elements for a {}-vertex graph",
            partition.n(),
            graph.num_vertices()
        );
        let adj = LocalAdjacency::extract(graph, &partition, env.rank());
        let schedule = build_schedule(env, &partition, &adj, config);
        let runner = LoopRunner::new(schedule, &adj, config.compute_cost);
        let iv = partition.interval_of(env.rank());
        let local: Vec<f64> = iv.iter().map(&init).collect();
        let values = runner.make_values(local);
        AdaptiveSession {
            partition,
            adj,
            runner,
            values,
            monitor: LoadMonitor::with_estimator(config.monitor_window, config.estimator),
            config: config.clone(),
        }
    }

    /// The current partition.
    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }

    /// This rank's owned values (in interval order).
    pub fn local_values(&self) -> &[f64] {
        self.values.local()
    }

    /// The current communication schedule.
    pub fn schedule(&self) -> &CommSchedule {
        self.runner.schedule()
    }

    /// Runs a block of iterations and records the load measurement.
    /// Collective.
    pub fn run_block(&mut self, env: &mut Env, iters: usize) -> stance_executor::kernel::LoopStats {
        let stats = self.runner.run(env, &mut self.values, iters);
        self.monitor
            .record(stats.compute_time, stats.iterations, self.values.local_len());
        stats
    }

    /// One load-balance check (and remap, if the controller finds it
    /// profitable). Returns `(remapped, check_cost, rebalance_cost)`.
    /// Collective.
    pub fn check_and_rebalance(&mut self, env: &mut Env, remaining_iters: usize) -> (bool, f64, f64) {
        let per_item = self.monitor.per_item_time().unwrap_or(0.0);
        let t0 = env.now();
        let decision = load_balance_step(
            env,
            &self.partition,
            per_item,
            remaining_iters,
            &self.config.balancer,
        );
        let check_cost = env.now() - t0;
        match decision {
            Decision::Keep => (false, check_cost, 0.0),
            Decision::Remap(new_partition) => {
                let t1 = env.now();
                self.apply_remap(env, new_partition);
                (true, check_cost, env.now() - t1)
            }
        }
    }

    /// Moves data and structure to `new_partition` and rebuilds the
    /// schedule. Collective.
    fn apply_remap(&mut self, env: &mut Env, new_partition: BlockPartition) {
        let new_local =
            redistribute_values(env, &self.partition, &new_partition, self.values.local());
        let new_adj = redistribute_adjacency(env, &self.partition, &new_partition, &self.adj);
        self.partition = new_partition;
        self.adj = new_adj;
        let schedule = build_schedule(env, &self.partition, &self.adj, &self.config);
        self.runner = LoopRunner::new(schedule, &self.adj, self.config.compute_cost);
        self.values = self.runner.make_values(new_local);
        self.monitor.reset();
    }

    /// The paper's full execution structure: blocks of `check_interval`
    /// iterations separated by load-balance checks, for `total_iters`
    /// iterations. Collective.
    pub fn run_adaptive(&mut self, env: &mut Env, total_iters: usize) -> SessionReport {
        let mut report = SessionReport::default();
        let mut done = 0;
        while done < total_iters {
            let block = self.config.check_interval.min(total_iters - done);
            let stats = self.run_block(env, block);
            done += block;
            report.iterations += stats.iterations;
            report.compute_time += stats.compute_time;
            if done < total_iters && self.config.load_balancing_enabled() {
                let (remapped, check, rebalance) =
                    self.check_and_rebalance(env, total_iters - done);
                report.checks += 1;
                report.check_cost += check;
                if remapped {
                    report.remaps += 1;
                    report.rebalance_cost += rebalance;
                }
            }
        }
        report.total_time = env.now().as_secs();
        report
    }
}

/// Builds the schedule with the configured strategy, charging inspector
/// work to the rank's clock. Collective for [`ScheduleStrategy::Simple`].
fn build_schedule(
    env: &mut Env,
    partition: &BlockPartition,
    adj: &LocalAdjacency,
    config: &StanceConfig,
) -> CommSchedule {
    match config.schedule_strategy {
        ScheduleStrategy::Sort1 | ScheduleStrategy::Sort2 => {
            let (schedule, work) = build_schedule_symmetric(
                partition,
                adj,
                env.rank(),
                config.schedule_strategy,
            );
            env.compute(config.inspector_cost.seconds(&work));
            schedule
        }
        ScheduleStrategy::Simple => {
            build_schedule_simple(env, partition, adj, &config.inspector_cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use stance_executor::sequential_relaxation;
    use stance_locality::meshgen;

    fn init(g: usize) -> f64 {
        (g as f64).cos() * 5.0
    }

    fn mesh() -> Graph {
        let raw = meshgen::triangulated_grid(12, 10, 0.4, 3);
        crate::prepare_mesh(&raw, OrderingMethod::Rcb).0
    }

    /// A balancer scaled to the tiny test mesh: the default hints assume the
    /// paper's 30k-vertex workload, where remap costs are repaid in a few
    /// iterations; at 120 vertices they would never be.
    fn test_balancer() -> BalancerConfig {
        BalancerConfig {
            redist_model: RedistCostModel {
                per_message: 1.0e-4,
                per_element: 1.0e-7,
            },
            rebuild_cost_hint: 1.0e-4,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        }
    }

    #[test]
    fn static_run_matches_sequential() {
        let m = mesh();
        let n = m.num_vertices();
        let iters = 20;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        for strategy in ScheduleStrategy::ALL {
            let m2 = m.clone();
            let config = StanceConfig::free().with_strategy(strategy);
            let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
            let report = Cluster::new(spec).run(move |env| {
                let mut s = AdaptiveSession::setup(env, &m2, init, &config);
                s.run_adaptive(env, iters);
                s.local_values().to_vec()
            });
            let mut got = Vec::with_capacity(n);
            for r in report.into_results() {
                got.extend(r);
            }
            assert_eq!(got, expected, "{strategy:?} diverged");
        }
    }

    #[test]
    fn adaptive_run_with_remap_matches_sequential() {
        // Competing load on rank 0 forces a remap; values must still match
        // the sequential reference bitwise afterwards.
        let m = mesh();
        let n = m.num_vertices();
        let iters = 40;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        let m2 = m.clone();
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(move |env| {
            let mut s = AdaptiveSession::setup(env, &m2, init, &config);
            let rep = s.run_adaptive(env, iters);
            let part = s.partition().clone();
            (rep, s.local_values().to_vec(), part)
        });
        let results: Vec<_> = report.into_results();
        let (rep0, _, final_part) = &results[0];
        assert!(rep0.remaps >= 1, "expected at least one remap: {rep0:?}");
        // The loaded rank should own fewer elements after the remap.
        let sizes = final_part.sizes();
        assert!(
            sizes[0] < sizes[1],
            "loaded rank kept too much: {sizes:?}"
        );
        // Reassemble values in global order via each rank's final interval.
        let mut got = vec![0.0; n];
        for (rank, (_, values, _)) in results.iter().enumerate() {
            let iv = final_part.interval_of(rank);
            got[iv.start..iv.end].copy_from_slice(values);
        }
        assert_eq!(got, expected, "adaptive run diverged from sequential");
    }

    #[test]
    fn load_balancing_reduces_adaptive_runtime() {
        let m = mesh();
        let iters = 50;
        let run = |lb: bool| {
            let m = m.clone();
            let mut config = if lb {
                StanceConfig::default().with_check_interval(10)
            } else {
                StanceConfig::default().without_load_balancing()
            };
            config.balancer = test_balancer();
            // Zero-cost network isolates the load-balancing effect: at 120
            // vertices, Ethernet message latency would swamp the compute
            // imbalance (the full-scale effect is measured by the Table 5
            // harness).
            let spec = ClusterSpec::uniform(2)
                .with_network(NetworkSpec::zero_cost())
                .with_load(0, LoadTimeline::constant(1.0 / 3.0));
            Cluster::new(spec)
                .run(move |env| {
                    let mut s = AdaptiveSession::setup(env, &m, init, &config);
                    s.run_adaptive(env, iters)
                })
                .ranks
                .iter()
                .map(|r| r.clock.as_secs())
                .fold(0.0, f64::max)
        };
        let with_lb = run(true);
        let without_lb = run(false);
        assert!(
            with_lb < without_lb * 0.8,
            "load balancing should help: {with_lb} vs {without_lb}"
        );
    }

    #[test]
    fn no_remap_when_balanced() {
        let m = mesh();
        let config = StanceConfig::default();
        let spec = ClusterSpec::paper_cluster(3);
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, init, &config);
            s.run_adaptive(env, 30)
        });
        for rep in report.results() {
            assert_eq!(rep.remaps, 0, "balanced cluster must not remap: {rep:?}");
            assert_eq!(rep.checks, 2);
            assert!(rep.check_cost > 0.0);
            assert_eq!(rep.rebalance_cost, 0.0);
        }
    }

    #[test]
    fn report_counters_consistent() {
        let m = mesh();
        let config = StanceConfig::free().with_check_interval(7);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, init, &config);
            s.run_adaptive(env, 21)
        });
        for rep in report.results() {
            assert_eq!(rep.iterations, 21);
            assert_eq!(rep.checks, 2); // after blocks 1 and 2, none after the last
        }
    }

    #[test]
    #[should_panic(expected = "partition has")]
    fn setup_rejects_wrong_partition_width() {
        let m = mesh();
        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let bad = BlockPartition::uniform(m.num_vertices(), 3);
            let _ = AdaptiveSession::setup_with_partition(env, &m, bad, init, &config);
        });
    }
}
