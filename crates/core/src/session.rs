//! The adaptive session: Phases A–D wired together on each rank.
//!
//! An [`AdaptiveSession`] owns one rank's share of the computation — its
//! partition interval, mesh rows, communication schedule, ghosted values and
//! load monitor — and drives the paper's execution structure: blocks of
//! executor iterations separated by load-balance checks, with full remaps
//! (data movement + inspector re-run) when the controller finds one
//! profitable.
//!
//! The session is generic over the application: `E` is the per-vertex
//! [`Element`](stance_sim::Element) and `K` the [`Kernel`] sweeping it.
//! Communication scratch lives in the session's [`LoopRunner`]
//! (`CommBuffers`, sized from the schedule and rebuilt only on remap), so
//! blocks of executor iterations between load-balance checks are
//! allocation-free. The
//! paper's relaxation is `AdaptiveSession<f64, RelaxationKernel>` (the
//! default parameters); the CG example runs
//! `AdaptiveSession<f64, LaplacianKernel>` and keeps its solver vectors
//! consistent across remaps with [`AdaptiveSession::check_and_rebalance_with`].
//!
//! With `StanceConfig::with_overlap(true)` the session's runner uses the
//! split-phase gather — the ghost exchange is posted, interior vertices
//! are swept while bytes are in flight, and boundary vertices after it
//! completes. The setting is numerically free (bitwise-identical results,
//! pinned by `tests/backend_equivalence.rs`) and survives remaps: the
//! rebuilt schedule re-classifies interior/boundary, the runner keeps the
//! flag.
//!
//! The session is backend-generic: every method that communicates takes
//! any [`Comm`] — the virtual-time simulator (`stance_sim::Env`) for
//! reproducible experiments, or the native thread-pool backend
//! (`stance-native`) for real-hardware runs, where the load monitor feeds
//! on measured wall-clock times instead of modelled ones. All such methods
//! are collectives: every rank of the cluster must call them in the same
//! order (the SPMD contract of §2).

use stance_balance::{
    load_balance_step, redistribute_adjacency, redistribute_values_coalesced, Decision, LoadMonitor,
};
use stance_executor::{GhostedArray, Kernel, LoopRunner, LoopStats, RelaxationKernel};
use stance_inspector::{
    build_schedule_simple, build_schedule_symmetric, CommSchedule, LocalAdjacency, ScheduleStrategy,
};
use stance_locality::Graph;
use stance_onedim::BlockPartition;
use stance_sim::{Comm, Element};

use crate::config::StanceConfig;

/// Aggregate timing of an adaptive run on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionReport {
    /// Executor iterations performed.
    pub iterations: usize,
    /// Seconds in the compute sweep (virtual on the simulator, wall-clock
    /// on the native backend).
    pub compute_time: f64,
    /// Load-balance checks performed.
    pub checks: usize,
    /// Remaps performed.
    pub remaps: usize,
    /// Seconds spent in checks (gather + decision + broadcast).
    pub check_cost: f64,
    /// Seconds spent remapping (data movement + schedule rebuild).
    pub rebalance_cost: f64,
    /// This rank's clock when the run finished.
    pub total_time: f64,
}

/// One rank's state for the adaptive computation.
pub struct AdaptiveSession<E: Element = f64, K: Kernel<E> = RelaxationKernel> {
    partition: BlockPartition,
    adj: LocalAdjacency,
    runner: LoopRunner<E, K>,
    values: GhostedArray<E>,
    monitor: LoadMonitor,
    config: StanceConfig,
}

impl<E: Element, K: Kernel<E>> AdaptiveSession<E, K> {
    /// Collective setup with an equal-share initial decomposition (the
    /// paper's adaptive experiment starts this way: "the graph was
    /// decomposed assuming all the processors had equal computational
    /// ratio"). The application supplies its `kernel` and the initial value
    /// `init(g)` of every global element `g`.
    pub fn setup<C: Comm>(
        env: &mut C,
        graph: &Graph,
        kernel: K,
        init: impl Fn(usize) -> E,
        config: &StanceConfig,
    ) -> Self {
        let partition = BlockPartition::uniform(graph.num_vertices(), env.size());
        Self::setup_with_partition(env, graph, partition, kernel, init, config)
    }

    /// Collective setup with an explicit initial partition (e.g. weighted by
    /// known machine speeds).
    pub fn setup_with_partition<C: Comm>(
        env: &mut C,
        graph: &Graph,
        partition: BlockPartition,
        kernel: K,
        init: impl Fn(usize) -> E,
        config: &StanceConfig,
    ) -> Self {
        assert_eq!(
            partition.num_procs(),
            env.size(),
            "partition has {} blocks for {} ranks",
            partition.num_procs(),
            env.size()
        );
        assert_eq!(
            partition.n(),
            graph.num_vertices(),
            "partition covers {} elements for a {}-vertex graph",
            partition.n(),
            graph.num_vertices()
        );
        let adj = LocalAdjacency::extract(graph, &partition, env.rank());
        let schedule = build_schedule(env, &partition, &adj, config);
        let runner = LoopRunner::new(schedule, &adj, config.compute_cost, kernel)
            .with_overlap(config.overlap_gather);
        let iv = partition.interval_of(env.rank());
        let local: Vec<E> = iv.iter().map(&init).collect();
        let values = runner.make_values(local);
        AdaptiveSession {
            partition,
            adj,
            runner,
            values,
            monitor: LoadMonitor::with_estimator(config.monitor_window, config.estimator),
            config: config.clone(),
        }
    }

    /// The current partition.
    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }

    /// This rank's owned values (in interval order).
    pub fn local_values(&self) -> &[E] {
        self.values.local()
    }

    /// Replaces this rank's owned values (for workloads that recompute
    /// their input between kernel applications, like a solver's search
    /// direction).
    ///
    /// # Panics
    /// Panics if `values` does not match the rank's current interval.
    pub fn set_local_values(&mut self, values: &[E]) {
        self.values.set_local(values);
    }

    /// The current communication schedule.
    pub fn schedule(&self) -> &CommSchedule {
        self.runner.schedule()
    }

    /// Runs a block of iterations, committing each sweep's output as the
    /// next sweep's input, and records the load measurement. Collective.
    pub fn run_block<C: Comm>(&mut self, env: &mut C, iters: usize) -> LoopStats {
        let stats = self.runner.run(env, &mut self.values, iters);
        self.monitor.record(
            stats.compute_time,
            stats.iterations,
            self.values.local_len(),
        );
        stats
    }

    /// Applies the kernel once *without* committing: gathers ghosts of the
    /// current values, performs the sweep, records the load measurement,
    /// and returns the per-owned-vertex output. The session's values are
    /// unchanged — operator-style workloads (e.g. a matvec inside CG) read
    /// the result, update their own vectors, and push the next input with
    /// [`AdaptiveSession::set_local_values`]. Collective.
    pub fn apply_kernel<C: Comm>(&mut self, env: &mut C) -> &[E] {
        let stats = self.runner.apply(env, &mut self.values);
        self.monitor.record(
            stats.compute_time,
            stats.iterations,
            self.values.local_len(),
        );
        self.runner.scratch()
    }

    /// One load-balance check (and remap, if the controller finds it
    /// profitable). Returns `(remapped, check_cost, rebalance_cost)`.
    /// Collective.
    pub fn check_and_rebalance<C: Comm>(
        &mut self,
        env: &mut C,
        remaining_iters: usize,
    ) -> (bool, f64, f64) {
        self.check_and_rebalance_with(env, remaining_iters, &mut [])
    }

    /// Like [`AdaptiveSession::check_and_rebalance`], but also moves the
    /// caller's auxiliary per-vertex arrays to the new distribution when a
    /// remap happens. Each array must hold one element per owned vertex (in
    /// interval order) and is resized/refilled in place, so solver state
    /// like `x` and `r` stays consistent with the session's partition.
    /// Collective — every rank must pass the same number of arrays.
    pub fn check_and_rebalance_with<C: Comm>(
        &mut self,
        env: &mut C,
        remaining_iters: usize,
        aux: &mut [&mut Vec<E>],
    ) -> (bool, f64, f64) {
        let per_item = self.monitor.per_item_time().unwrap_or(0.0);
        let t0 = env.now_secs();
        let decision = load_balance_step(
            env,
            &self.partition,
            per_item,
            remaining_iters,
            &self.config.balancer,
        );
        let check_cost = env.now_secs() - t0;
        match decision {
            Decision::Keep => (false, check_cost, 0.0),
            Decision::Remap(new_partition) => {
                let t1 = env.now_secs();
                self.apply_remap(env, new_partition, aux);
                (true, check_cost, env.now_secs() - t1)
            }
        }
    }

    /// Moves data and structure to `new_partition` and rebuilds the
    /// schedule (and, through [`LoopRunner::rebuild`], the runner's
    /// transport scratch — the only point in a run where the steady-state
    /// communication path allocates). Collective.
    fn apply_remap<C: Comm>(
        &mut self,
        env: &mut C,
        new_partition: BlockPartition,
        aux: &mut [&mut Vec<E>],
    ) {
        // The session's values and every caller aux array move in ONE
        // coalesced message per destination (§2 message coalescing).
        let mut new_local = self.values.local().to_vec();
        {
            let mut all: Vec<&mut Vec<E>> = Vec::with_capacity(1 + aux.len());
            all.push(&mut new_local);
            all.extend(aux.iter_mut().map(|a| &mut **a));
            redistribute_values_coalesced(env, &self.partition, &new_partition, &mut all);
        }
        let new_adj = redistribute_adjacency(env, &self.partition, &new_partition, &self.adj);
        self.partition = new_partition;
        self.adj = new_adj;
        let schedule = build_schedule(env, &self.partition, &self.adj, &self.config);
        self.runner.rebuild(schedule, &self.adj);
        self.values = self.runner.make_values(new_local);
        self.monitor.reset();
    }

    /// The paper's full execution structure: blocks of `check_interval`
    /// iterations separated by load-balance checks, for `total_iters`
    /// iterations. Collective.
    pub fn run_adaptive<C: Comm>(&mut self, env: &mut C, total_iters: usize) -> SessionReport {
        let mut report = SessionReport::default();
        let mut done = 0;
        while done < total_iters {
            let block = self.config.check_interval.min(total_iters - done);
            let stats = self.run_block(env, block);
            done += block;
            report.iterations += stats.iterations;
            report.compute_time += stats.compute_time;
            if done < total_iters && self.config.load_balancing_enabled() {
                let (remapped, check, rebalance) =
                    self.check_and_rebalance(env, total_iters - done);
                report.checks += 1;
                report.check_cost += check;
                if remapped {
                    report.remaps += 1;
                    report.rebalance_cost += rebalance;
                }
            }
        }
        report.total_time = env.now_secs();
        report
    }
}

/// Builds the schedule with the configured strategy, charging inspector
/// work to the rank's clock. Collective for [`ScheduleStrategy::Simple`].
fn build_schedule<C: Comm>(
    env: &mut C,
    partition: &BlockPartition,
    adj: &LocalAdjacency,
    config: &StanceConfig,
) -> CommSchedule {
    match config.schedule_strategy {
        ScheduleStrategy::Sort1 | ScheduleStrategy::Sort2 => {
            let (schedule, work) =
                build_schedule_symmetric(partition, adj, env.rank(), config.schedule_strategy);
            env.compute(config.inspector_cost.seconds(&work));
            schedule
        }
        ScheduleStrategy::Simple => {
            build_schedule_simple(env, partition, adj, &config.inspector_cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use stance_executor::sequential_relaxation;
    use stance_locality::meshgen;

    fn init(g: usize) -> f64 {
        (g as f64).cos() * 5.0
    }

    fn mesh() -> Graph {
        let raw = meshgen::triangulated_grid(12, 10, 0.4, 3);
        crate::prepare_mesh(&raw, OrderingMethod::Rcb).0
    }

    /// A balancer scaled to the tiny test mesh: the default hints assume the
    /// paper's 30k-vertex workload, where remap costs are repaid in a few
    /// iterations; at 120 vertices they would never be.
    fn test_balancer() -> BalancerConfig {
        BalancerConfig {
            redist_model: RedistCostModel {
                per_message: 1.0e-4,
                per_element: 1.0e-7,
            },
            rebuild_cost_hint: 1.0e-4,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        }
    }

    #[test]
    fn static_run_matches_sequential() {
        let m = mesh();
        let n = m.num_vertices();
        let iters = 20;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        for strategy in ScheduleStrategy::ALL {
            let m2 = m.clone();
            let config = StanceConfig::free().with_strategy(strategy);
            let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
            let report = Cluster::new(spec).run(move |env| {
                let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init, &config);
                s.run_adaptive(env, iters);
                s.local_values().to_vec()
            });
            let mut got = Vec::with_capacity(n);
            for r in report.into_results() {
                got.extend(r);
            }
            assert_eq!(got, expected, "{strategy:?} diverged");
        }
    }

    #[test]
    fn adaptive_run_with_remap_matches_sequential() {
        // Competing load on rank 0 forces a remap; values must still match
        // the sequential reference bitwise afterwards.
        let m = mesh();
        let n = m.num_vertices();
        let iters = 40;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        let m2 = m.clone();
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(move |env| {
            let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init, &config);
            let rep = s.run_adaptive(env, iters);
            let part = s.partition().clone();
            (rep, s.local_values().to_vec(), part)
        });
        let results: Vec<_> = report.into_results();
        let (rep0, _, final_part) = &results[0];
        assert!(rep0.remaps >= 1, "expected at least one remap: {rep0:?}");
        // The loaded rank should own fewer elements after the remap.
        let sizes = final_part.sizes();
        assert!(sizes[0] < sizes[1], "loaded rank kept too much: {sizes:?}");
        // Reassemble values in global order via each rank's final interval.
        let mut got = vec![0.0; n];
        for (rank, (_, values, _)) in results.iter().enumerate() {
            let iv = final_part.interval_of(rank);
            got[iv.start..iv.end].copy_from_slice(values);
        }
        assert_eq!(got, expected, "adaptive run diverged from sequential");
    }

    #[test]
    fn overlapped_adaptive_run_with_remap_matches_sequential() {
        // The split-phase gather must survive remaps (the rebuilt runner
        // re-classifies interior/boundary) and still match the sequential
        // reference bitwise.
        let m = mesh();
        let n = m.num_vertices();
        let iters = 40;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        let m2 = m.clone();
        let mut config = StanceConfig::default()
            .with_check_interval(10)
            .with_overlap(true);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(move |env| {
            let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init, &config);
            let rep = s.run_adaptive(env, iters);
            (rep, s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        assert!(
            results[0].0.remaps >= 1,
            "expected at least one remap: {:?}",
            results[0].0
        );
        let final_part = results[0].2.clone();
        let mut got = vec![0.0; n];
        for (rank, (_, values, _)) in results.iter().enumerate() {
            let iv = final_part.interval_of(rank);
            got[iv.start..iv.end].copy_from_slice(values);
        }
        assert_eq!(got, expected, "overlapped adaptive run diverged");
    }

    #[test]
    fn load_balancing_reduces_adaptive_runtime() {
        let m = mesh();
        let iters = 50;
        let run = |lb: bool| {
            let m = m.clone();
            let mut config = if lb {
                StanceConfig::default().with_check_interval(10)
            } else {
                StanceConfig::default().without_load_balancing()
            };
            config.balancer = test_balancer();
            // Zero-cost network isolates the load-balancing effect: at 120
            // vertices, Ethernet message latency would swamp the compute
            // imbalance (the full-scale effect is measured by the Table 5
            // harness).
            let spec = ClusterSpec::uniform(2)
                .with_network(NetworkSpec::zero_cost())
                .with_load(0, LoadTimeline::constant(1.0 / 3.0));
            Cluster::new(spec)
                .run(move |env| {
                    let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
                    s.run_adaptive(env, iters)
                })
                .ranks
                .iter()
                .map(|r| r.clock.as_secs())
                .fold(0.0, f64::max)
        };
        let with_lb = run(true);
        let without_lb = run(false);
        assert!(
            with_lb < without_lb * 0.8,
            "load balancing should help: {with_lb} vs {without_lb}"
        );
    }

    #[test]
    fn no_remap_when_balanced() {
        let m = mesh();
        let config = StanceConfig::default();
        let spec = ClusterSpec::paper_cluster(3);
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            s.run_adaptive(env, 30)
        });
        for rep in report.results() {
            assert_eq!(rep.remaps, 0, "balanced cluster must not remap: {rep:?}");
            assert_eq!(rep.checks, 2);
            assert!(rep.check_cost > 0.0);
            assert_eq!(rep.rebalance_cost, 0.0);
        }
    }

    #[test]
    fn report_counters_consistent() {
        let m = mesh();
        let config = StanceConfig::free().with_check_interval(7);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            s.run_adaptive(env, 21)
        });
        for rep in report.results() {
            assert_eq!(rep.iterations, 21);
            assert_eq!(rep.checks, 2); // after blocks 1 and 2, none after the last
        }
    }

    #[test]
    fn aux_arrays_follow_a_forced_remap() {
        // An auxiliary per-vertex array passed to check_and_rebalance_with
        // must land on the same owners as the session's values.
        let m = mesh();
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(2)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            // aux[g] = 3g so ownership is trivially checkable.
            let mut aux: Vec<f64> = s
                .partition()
                .interval_of(env.rank())
                .iter()
                .map(|g| 3.0 * g as f64)
                .collect();
            let mut remapped_once = false;
            for _ in 0..4 {
                s.run_block(env, 10);
                let (remapped, _, _) = s.check_and_rebalance_with(env, 10, &mut [&mut aux]);
                remapped_once |= remapped;
            }
            let iv = s.partition().interval_of(env.rank());
            assert_eq!(aux.len(), iv.len(), "aux length follows the partition");
            for (offset, g) in iv.iter().enumerate() {
                assert_eq!(aux[offset], 3.0 * g as f64, "aux element strayed");
            }
            remapped_once
        });
        assert!(
            report.into_results().into_iter().all(|r| r),
            "the forced load should have remapped at least once"
        );
    }

    #[test]
    #[should_panic(expected = "partition has")]
    fn setup_rejects_wrong_partition_width() {
        let m = mesh();
        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let bad = BlockPartition::uniform(m.num_vertices(), 3);
            let _ = AdaptiveSession::setup_with_partition(
                env,
                &m,
                bad,
                RelaxationKernel,
                init,
                &config,
            );
        });
    }
}
