//! The adaptive session: Phases A–D wired together on each rank.
//!
//! An [`AdaptiveSession`] owns one rank's share of the computation — its
//! partition interval, mesh rows, communication schedule, ghosted values and
//! load monitor — and drives the paper's execution structure: blocks of
//! executor iterations separated by load-balance checks, with full remaps
//! (data movement + inspector re-run) when the controller finds one
//! profitable.
//!
//! The session is generic over the application: `E` is the per-vertex
//! [`Element`](stance_sim::Element) and `K` the [`Kernel`] sweeping it.
//! Communication scratch lives in the session's [`LoopRunner`]
//! (`CommBuffers`, sized from the schedule and rebuilt only on remap), so
//! blocks of executor iterations between load-balance checks are
//! allocation-free. The
//! paper's relaxation is `AdaptiveSession<f64, RelaxationKernel>` (the
//! default parameters); the CG example runs
//! `AdaptiveSession<f64, LaplacianKernel>` and keeps its solver vectors
//! consistent across remaps with [`AdaptiveSession::check_and_rebalance_named`].
//!
//! With `StanceConfig::with_overlap(true)` the session's runner uses the
//! split-phase gather — the ghost exchange is posted, interior vertices
//! are swept while bytes are in flight, and boundary vertices after it
//! completes. The setting is numerically free (bitwise-identical results,
//! pinned by `tests/backend_equivalence.rs`) and survives remaps: the
//! rebuilt schedule re-classifies interior/boundary, the runner keeps the
//! flag.
//!
//! The session is backend-generic: every method that communicates takes
//! any [`Comm`] — the virtual-time simulator (`stance_sim::Env`) for
//! reproducible experiments, or the native thread-pool backend
//! (`stance-native`) for real-hardware runs, where the load monitor feeds
//! on measured wall-clock times instead of modelled ones. All such methods
//! are collectives: every rank of the cluster must call them in the same
//! order (the SPMD contract of §2).
//!
//! With `StanceConfig::with_verification(true)` the session *checks* that
//! contract as it runs: every schedule build and remap is followed by a
//! collective audit of the global invariants (intervals tile, ghosts
//! resolve to owners, send/recv lists pairwise symmetric, derived
//! orderings deadlock-free — see [`stance_verify`]), each remap's
//! redistribution plan is audited against the old and new partitions, and
//! all point-to-point traffic is recorded through a
//! [`CheckedComm`](stance_verify::CheckedComm) whose trace
//! [`AdaptiveSession::verify_protocol`] analyzes collectively. A violated
//! invariant panics with the full diagnostic report; results stay bitwise
//! identical either way, and with verification off none of the machinery
//! is constructed.

use stance_balance::{
    load_balance_step_measured, Decision, LoadMonitor, MeasuredCosts, RemapScratch,
};
use stance_executor::{GhostedArray, Kernel, LoopRunner, LoopStats, RelaxationKernel};
use stance_inspector::{
    build_schedule_simple, build_schedule_symmetric_with, CommSchedule, LocalAdjacency,
    ScheduleScratch, ScheduleStrategy,
};
use stance_locality::Graph;
use stance_onedim::BlockPartition;
use stance_sim::tags::TAG_CHECKPOINT;
use stance_sim::{Comm, Element, Payload};
use stance_verify::{
    analyze_collective, audit_collective, audit_redistribution, expect_clean, Diagnostic,
    MaybeChecked, RankTrace,
};

use crate::checkpoint::SessionCheckpoint;
use crate::config::StanceConfig;

/// Aggregate timing of an adaptive run on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionReport {
    /// Executor iterations performed.
    pub iterations: usize,
    /// Seconds in the compute sweep (virtual on the simulator, wall-clock
    /// on the native backend).
    pub compute_time: f64,
    /// Load-balance checks performed.
    pub checks: usize,
    /// Remaps performed.
    pub remaps: usize,
    /// Seconds spent in checks (gather + decision + broadcast).
    pub check_cost: f64,
    /// Seconds spent remapping (data movement + schedule rebuild).
    pub rebalance_cost: f64,
    /// This rank's clock when the run finished.
    pub total_time: f64,
}

/// One rank's state for the adaptive computation.
pub struct AdaptiveSession<E: Element = f64, K: Kernel<E> = RelaxationKernel> {
    partition: BlockPartition,
    adj: LocalAdjacency,
    runner: LoopRunner<E, K>,
    values: GhostedArray<E>,
    monitor: LoadMonitor,
    config: StanceConfig,
    /// Recycled storage for the whole remap pipeline (plan, message
    /// staging, destination blocks, adjacency CSR assembly, schedule
    /// rebuild) — the remap-path counterpart of the runner's
    /// `CommBuffers`: after the first remap has warmed it up, a remap's
    /// allocation count is bounded and independent of how many remaps the
    /// run has already performed.
    scratch: RemapScratch<E>,
    /// The protocol trace, recording every point-to-point event the
    /// session's communication performs — `Some` iff
    /// `StanceConfig::verify` (boxed so the disabled case costs one
    /// pointer). Analyzed by [`AdaptiveSession::verify_protocol`].
    verify: Option<Box<RankTrace>>,
}

impl<E: Element, K: Kernel<E>> AdaptiveSession<E, K> {
    /// Collective setup with an equal-share initial decomposition (the
    /// paper's adaptive experiment starts this way: "the graph was
    /// decomposed assuming all the processors had equal computational
    /// ratio"). The application supplies its `kernel` and the initial value
    /// `init(g)` of every global element `g`.
    pub fn setup<C: Comm>(
        env: &mut C,
        graph: &Graph,
        kernel: K,
        init: impl Fn(usize) -> E,
        config: &StanceConfig,
    ) -> Self {
        let partition = BlockPartition::uniform(graph.num_vertices(), env.size());
        Self::setup_with_partition(env, graph, partition, kernel, init, config)
    }

    /// Collective setup with an explicit initial partition (e.g. weighted by
    /// known machine speeds).
    pub fn setup_with_partition<C: Comm>(
        env: &mut C,
        graph: &Graph,
        partition: BlockPartition,
        kernel: K,
        init: impl Fn(usize) -> E,
        config: &StanceConfig,
    ) -> Self {
        assert_eq!(
            partition.num_procs(),
            env.size(),
            "partition has {} blocks for {} ranks",
            partition.num_procs(),
            env.size()
        );
        assert_eq!(
            partition.n(),
            graph.num_vertices(),
            "partition covers {} elements for a {}-vertex graph",
            partition.n(),
            graph.num_vertices()
        );
        let adj = LocalAdjacency::extract(graph, &partition, env.rank());
        let mut scratch = RemapScratch::new();
        let mut verify = config
            .verify
            .then(|| Box::new(RankTrace::new(env.rank(), env.size())));
        let schedule = {
            let mut env = MaybeChecked::new(env, verify.as_deref_mut());
            build_schedule(&mut env, &partition, &adj, config, &mut scratch.schedule)
        };
        let runner = LoopRunner::new(schedule, &adj, config.compute_cost, kernel)
            .with_overlap(config.overlap_gather)
            .with_team(config.team_threads);
        if verify.is_some() {
            let diags =
                audit_collective(env, partition.n(), runner.schedule(), &adj, runner.tadj());
            expect_clean("post-setup schedule audit", &diags);
        }
        let iv = partition.interval_of(env.rank());
        let local: Vec<E> = iv.iter().map(&init).collect();
        let values = runner.make_values(local);
        AdaptiveSession {
            partition,
            adj,
            runner,
            values,
            monitor: LoadMonitor::with_estimator(config.monitor_window, config.estimator),
            config: config.clone(),
            scratch,
            verify,
        }
    }

    /// The current partition.
    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }

    /// This rank's owned values (in interval order).
    pub fn local_values(&self) -> &[E] {
        self.values.local()
    }

    /// Replaces this rank's owned values (for workloads that recompute
    /// their input between kernel applications, like a solver's search
    /// direction).
    ///
    /// # Panics
    /// Panics if `values` does not match the rank's current interval.
    pub fn set_local_values(&mut self, values: &[E]) {
        self.values.set_local(values);
    }

    /// The current communication schedule.
    pub fn schedule(&self) -> &CommSchedule {
        self.runner.schedule()
    }

    /// Runs a block of iterations, committing each sweep's output as the
    /// next sweep's input, and records the load measurement. Collective.
    pub fn run_block<C: Comm>(&mut self, env: &mut C, iters: usize) -> LoopStats {
        let AdaptiveSession {
            runner,
            values,
            monitor,
            verify,
            ..
        } = self;
        let mut env = MaybeChecked::new(env, verify.as_deref_mut());
        let stats = runner.run(&mut env, values, iters);
        monitor.record(stats.compute_time, stats.iterations, values.local_len());
        stats
    }

    /// Applies the kernel once *without* committing: gathers ghosts of the
    /// current values, performs the sweep, records the load measurement,
    /// and returns the per-owned-vertex output. The session's values are
    /// unchanged — operator-style workloads (e.g. a matvec inside CG) read
    /// the result, update their own vectors, and push the next input with
    /// [`AdaptiveSession::set_local_values`]. Collective.
    pub fn apply_kernel<C: Comm>(&mut self, env: &mut C) -> &[E] {
        let AdaptiveSession {
            runner,
            values,
            monitor,
            verify,
            ..
        } = self;
        let mut env = MaybeChecked::new(env, verify.as_deref_mut());
        let stats = runner.apply(&mut env, values);
        monitor.record(stats.compute_time, stats.iterations, values.local_len());
        runner.scratch()
    }

    /// One load-balance check (and remap, if the controller finds it
    /// profitable). Returns `(remapped, check_cost, rebalance_cost)`.
    /// Collective.
    pub fn check_and_rebalance<C: Comm>(
        &mut self,
        env: &mut C,
        remaining_iters: usize,
    ) -> (bool, f64, f64) {
        self.check_and_rebalance_impl(env, remaining_iters, &mut [])
    }

    /// Like [`AdaptiveSession::check_and_rebalance`], but also moves the
    /// caller's auxiliary per-vertex arrays to the new distribution when a
    /// remap happens — identified **positionally**, which is why this
    /// spelling is deprecated: a caller that reorders its aux list silently
    /// wires solver state to the wrong array. Use
    /// [`AdaptiveSession::check_and_rebalance_named`] (same semantics,
    /// name-keyed) or migrate to a
    /// [`DataflowSession`](crate::DataflowSession), where fields are
    /// registered by name once and move through remaps automatically.
    #[deprecated(
        since = "0.7.0",
        note = "positional aux arrays are error-prone; use check_and_rebalance_named \
                (name-keyed) or a DataflowSession with registered fields"
    )]
    pub fn check_and_rebalance_with<C: Comm>(
        &mut self,
        env: &mut C,
        remaining_iters: usize,
        aux: &mut [&mut Vec<E>],
    ) -> (bool, f64, f64) {
        self.check_and_rebalance_impl(env, remaining_iters, aux)
    }

    /// Like [`AdaptiveSession::check_and_rebalance`], but also moves the
    /// caller's **named** auxiliary per-vertex arrays to the new
    /// distribution when a remap happens. Each array must hold one element
    /// per owned vertex (in interval order) and is resized/refilled in
    /// place, so solver state like `x` and `r` stays consistent with the
    /// session's partition. The names must be pairwise distinct; they are
    /// the same keys [`AdaptiveSession::checkpoint_named`] records, so a
    /// caller keeps one name per array across rebalancing and
    /// checkpointing. Collective — every rank must pass the same arrays
    /// under the same names in the same order.
    ///
    /// # Panics
    /// Panics if two arrays share a name.
    pub fn check_and_rebalance_named<C: Comm>(
        &mut self,
        env: &mut C,
        remaining_iters: usize,
        fields: &mut [(&str, &mut Vec<E>)],
    ) -> (bool, f64, f64) {
        for i in 1..fields.len() {
            let name = fields[i].0;
            assert!(
                fields[..i].iter().all(|(n, _)| *n != name),
                "aux field {name:?} is passed more than once"
            );
        }
        let mut aux: Vec<&mut Vec<E>> = fields.iter_mut().map(|(_, a)| &mut **a).collect();
        self.check_and_rebalance_impl(env, remaining_iters, &mut aux)
    }

    fn check_and_rebalance_impl<C: Comm>(
        &mut self,
        env: &mut C,
        remaining_iters: usize,
        aux: &mut [&mut Vec<E>],
    ) -> (bool, f64, f64) {
        let per_item = self.monitor.per_item_for_check().unwrap_or(0.0);
        // Calibration (opt-in): charge the profitability rule the costs
        // this rank has *measured* — the rebuild EWMA and the fitted
        // movement model — instead of the static hints.
        let measured = if self.config.calibrate_rebuild_cost {
            MeasuredCosts {
                rebuild: self.monitor.rebuild_cost(),
                movement: self
                    .monitor
                    .movement_model(self.config.balancer.redist_model),
            }
        } else {
            MeasuredCosts::none()
        };
        let t0 = env.now_secs();
        let decision = {
            let mut env = MaybeChecked::new(env, self.verify.as_deref_mut());
            load_balance_step_measured(
                &mut env,
                &self.partition,
                per_item,
                remaining_iters,
                &self.config.balancer,
                measured,
            )
        };
        let check_cost = env.now_secs() - t0;
        match decision {
            Decision::Keep => (false, check_cost, 0.0),
            Decision::Remap(new_partition) => {
                let t1 = env.now_secs();
                self.apply_remap(env, new_partition, aux);
                (true, check_cost, env.now_secs() - t1)
            }
        }
    }

    /// The monitor's current per-item time estimate (seconds per element
    /// per sweep), if any measurement or carried estimate exists. Exposed
    /// for observability: after a remap the estimate is *carried* (it is
    /// per element, so it survives the block resize), keeping the first
    /// post-remap check informed even on ranks whose new block records
    /// nothing.
    pub fn per_item_estimate(&self) -> Option<f64> {
        self.monitor.per_item_time()
    }

    /// The calibrated schedule-rebuild cost (EWMA of measured rebuild
    /// shares, seconds), or `None` before the first remap. This is what
    /// replaces `rebuild_cost_hint` in checks when
    /// `StanceConfig::calibrate_rebuild_cost` is enabled.
    pub fn calibrated_rebuild_cost(&self) -> Option<f64> {
        self.monitor.rebuild_cost()
    }

    /// The calibrated total remap cost (EWMA over measured remaps:
    /// data movement + rebuild, seconds), or `None` before the first
    /// remap.
    pub fn calibrated_remap_cost(&self) -> Option<f64> {
        self.monitor.remap_cost()
    }

    /// Forces a remap to an explicitly chosen partition, moving the
    /// session's values (and the caller's aux arrays) and rebuilding the
    /// schedule, without consulting the controller. Collective — every
    /// rank must pass the same `new_partition` and the same number of aux
    /// arrays. An identity remap (the current partition) is a no-op.
    ///
    /// This is the deterministic repartitioning entry point: benchmarks
    /// use it to measure remap latency, tests to force churn, and
    /// applications with out-of-band knowledge (e.g. a scheduler that
    /// *knows* a machine is about to be withdrawn) to act without waiting
    /// for the load monitor to notice.
    ///
    /// # Panics
    /// Panics if `new_partition` does not cover the same list with the
    /// same number of ranks.
    pub fn remap_to<C: Comm>(
        &mut self,
        env: &mut C,
        new_partition: BlockPartition,
        aux: &mut [&mut Vec<E>],
    ) {
        assert_eq!(
            new_partition.num_procs(),
            self.partition.num_procs(),
            "partition rank count changed"
        );
        assert_eq!(new_partition.n(), self.partition.n(), "list length changed");
        self.apply_remap(env, new_partition, aux);
    }

    /// Moves data and structure to `new_partition` and rebuilds the
    /// schedule and the runner's transport scratch. Collective.
    ///
    /// The whole pipeline draws on the session's [`RemapScratch`]: the
    /// redistribution plan is computed once and shared, values move
    /// straight out of the `GhostedArray`'s storage (no upfront copy),
    /// the new adjacency assembles into recycled CSR arrays, and the
    /// schedule/runner rebuild reuses the retired schedule's vectors — so
    /// after the first remap has warmed the scratch, a remap's allocation
    /// count is bounded (pinned by `tests/alloc_free.rs`).
    ///
    /// The measured cost is fed back to the monitor: the schedule-rebuild
    /// share and the total, both in backend seconds (modelled on the
    /// simulator, wall clock on native). With
    /// `StanceConfig::calibrate_rebuild_cost` the next check's
    /// profitability rule charges the measured rebuild EWMA instead of
    /// the static hint.
    fn apply_remap<C: Comm>(
        &mut self,
        env: &mut C,
        new_partition: BlockPartition,
        aux: &mut [&mut Vec<E>],
    ) {
        if new_partition == self.partition {
            // Identity: nothing moves, nothing rebuilds. The controller
            // never issues identity remaps (zero saving); this guards the
            // explicit `remap_to` entry point.
            return;
        }
        let t0 = env.now_secs();
        let (moved_messages, moved_elements);
        let plan = self.scratch.take_plan(&self.partition, &new_partition);
        // The trace is taken for the duration so the redistribution and
        // rebuild below can wrap `env` while `self` stays borrowable.
        let mut trace = self.verify.take();
        if trace.is_some() {
            let diags = audit_redistribution(&self.partition, &new_partition, &plan);
            expect_clean("redistribution-plan audit", &diags);
        }
        {
            let mut env = MaybeChecked::new(env, trace.as_deref_mut());
            // The session's values and every caller aux array move in ONE
            // coalesced message per destination (§2 message coalescing),
            // packed straight from the ghosted array's owned block.
            self.scratch.redistribute(
                &mut env,
                &self.partition,
                &new_partition,
                &plan,
                self.values.local(),
                aux,
            );
            let new_adj = self.scratch.redistribute_adjacency(
                &mut env,
                &self.partition,
                &new_partition,
                &plan,
                &self.adj,
            );
            moved_messages = plan.num_messages();
            moved_elements = plan.elements_moved();
            self.scratch.put_plan(plan);
            let old_adj = std::mem::replace(&mut self.adj, new_adj);
            self.scratch.recycle_adjacency(old_adj);
        }
        self.partition = new_partition;

        // The schedule-rebuild share: inspector + runner + value buffers.
        let t_rebuild = env.now_secs();
        // Feed the movement model one (messages, elements, seconds)
        // observation: the span just measured is exactly the data-movement
        // share of this remap.
        self.monitor
            .record_movement_cost(moved_messages, moved_elements, t_rebuild - t0);
        let schedule = {
            let mut env = MaybeChecked::new(env, trace.as_deref_mut());
            build_schedule(
                &mut env,
                &self.partition,
                &self.adj,
                &self.config,
                &mut self.scratch.schedule,
            )
        };
        let retired = self.runner.rebuild(schedule, &self.adj);
        self.scratch.schedule.recycle(retired);
        self.runner
            .reset_values(&mut self.values, self.scratch.primary_block());
        let now = env.now_secs();
        self.monitor.record_remap_cost(now - t_rebuild, now - t0);
        self.verify = trace;
        if self.verify.is_some() {
            // The rebuilt schedule must satisfy the same global contract
            // the setup schedule did (audit messages are charged after the
            // remap cost is recorded, so calibration stays unpolluted).
            let diags = audit_collective(
                env,
                self.partition.n(),
                self.runner.schedule(),
                &self.adj,
                self.runner.tadj(),
            );
            expect_clean("post-remap schedule audit", &diags);
        }
        self.monitor.rollover();
    }

    /// Checkpoints the session collectively: allgathers every rank's
    /// recovery state (monitor snapshot, owned values, the caller's aux
    /// slices) on the reserved `TAG_CHECKPOINT` and assembles the same
    /// replicated [`SessionCheckpoint`] on every rank — so any subset of
    /// survivors can later restore without help from the dead.
    ///
    /// Each `aux` slice must hold one element per owned vertex (in
    /// interval order), exactly like the arrays passed to
    /// [`AdaptiveSession::check_and_rebalance_named`]. Collective — every
    /// rank must pass the same number of aux slices.
    ///
    /// The blob's field records are name-keyed (format v2): the value
    /// array is recorded as `"values"` and the aux slices under the
    /// generated names `"aux0"`, `"aux1"`, … in argument order. Callers
    /// with meaningful names should use
    /// [`AdaptiveSession::checkpoint_named`] so restores can validate
    /// them.
    pub fn checkpoint<C: Comm>(&mut self, env: &mut C, aux: &[&[E]]) -> SessionCheckpoint<E> {
        let names: Vec<String> = (0..aux.len()).map(|i| format!("aux{i}")).collect();
        self.checkpoint_impl(env, aux, names)
    }

    /// Like [`AdaptiveSession::checkpoint`], but records each aux slice
    /// under the caller's **name** — the key
    /// [`SessionCheckpoint::field`] looks up and
    /// [`DataflowSession::restore`](crate::DataflowSession::restore)
    /// validates. Names must be non-empty, pairwise distinct, and not
    /// `"values"` (the primary's record). Collective — every rank must
    /// pass the same slices under the same names in the same order.
    ///
    /// # Panics
    /// Panics on an empty, duplicated, or `"values"`-colliding name.
    pub fn checkpoint_named<C: Comm>(
        &mut self,
        env: &mut C,
        fields: &[(&str, &[E])],
    ) -> SessionCheckpoint<E> {
        for (i, (name, _)) in fields.iter().enumerate() {
            assert!(!name.is_empty(), "checkpoint field name is empty");
            assert_ne!(
                *name, "values",
                "field name \"values\" collides with the primary record"
            );
            assert!(
                fields[..i].iter().all(|(n, _)| n != name),
                "checkpoint field {name:?} is passed more than once"
            );
        }
        let aux: Vec<&[E]> = fields.iter().map(|(_, a)| *a).collect();
        let names = fields.iter().map(|(n, _)| (*n).to_string()).collect();
        self.checkpoint_impl(env, &aux, names)
    }

    fn checkpoint_impl<C: Comm>(
        &mut self,
        env: &mut C,
        aux: &[&[E]],
        names: Vec<String>,
    ) -> SessionCheckpoint<E> {
        let iv = self.partition.interval_of(env.rank());
        for (i, a) in aux.iter().enumerate() {
            assert_eq!(
                a.len(),
                iv.len(),
                "aux slice {i} has {} elements for a {}-element block",
                a.len(),
                iv.len()
            );
        }
        let mut bytes = Vec::new();
        crate::checkpoint::write_snapshot(&self.monitor.snapshot(), &mut bytes);
        E::pack_into(self.values.local(), &mut bytes);
        for a in aux {
            E::pack_into(a, &mut bytes);
        }
        let parts = {
            let mut env = MaybeChecked::new(env, self.verify.as_deref_mut());
            env.allgather(TAG_CHECKPOINT, Payload::from_bytes(bytes))
        };
        let n = self.partition.n();
        let p = self.partition.num_procs();
        let mut monitors = Vec::with_capacity(p);
        let mut values = vec![E::zero(); n];
        let mut aux_global: Vec<Vec<E>> = (0..aux.len()).map(|_| vec![E::zero(); n]).collect();
        for (rank, payload) in parts.into_iter().enumerate() {
            let b = payload.into_bytes();
            let (snap, rest) = crate::checkpoint::read_contribution(&b);
            monitors.push(snap);
            let riv = self.partition.interval_of(rank);
            let vb = riv.len() * E::SIZE_BYTES;
            E::unpack_into(&rest[..vb], &mut values[riv.start..riv.end]);
            for (k, ag) in aux_global.iter_mut().enumerate() {
                E::unpack_into(
                    &rest[(k + 1) * vb..(k + 2) * vb],
                    &mut ag[riv.start..riv.end],
                );
            }
        }
        SessionCheckpoint {
            n,
            block_sizes: self.partition.block_sizes(),
            arrangement: self.partition.arrangement().as_slice().to_vec(),
            monitors,
            primary_name: "values".to_string(),
            values,
            aux: names.into_iter().zip(aux_global).collect(),
        }
    }

    /// Collective restore from a [`SessionCheckpoint`], onto **any** rank
    /// count — this is the recovery entry point for shrink-onto-survivors
    /// (pass a [`SurvivorComm`](stance_sim::SurvivorComm) wrapping the
    /// backend) as well as plain same-width restarts.
    ///
    /// Restoring onto the checkpoint's own rank count reinstalls the
    /// partition *and* every rank's monitor snapshot bit-for-bit; a
    /// different rank count starts from [`BlockPartition::uniform`] and
    /// fresh monitors (a redistribution plan cannot cross rank counts, and
    /// fresh monitors keep a recovered run identical to a clean start
    /// from the same blob). Returns the session and the checkpoint's aux
    /// arrays localized to this rank's new interval.
    ///
    /// # Panics
    /// Panics if `graph` does not have the checkpoint's element count.
    pub fn restore<C: Comm>(
        env: &mut C,
        graph: &Graph,
        kernel: K,
        ckpt: &SessionCheckpoint<E>,
        config: &StanceConfig,
    ) -> (Self, Vec<Vec<E>>) {
        assert_eq!(
            graph.num_vertices(),
            ckpt.n(),
            "checkpoint covers {} elements for a {}-vertex graph",
            ckpt.n(),
            graph.num_vertices()
        );
        let same_width = env.size() == ckpt.num_procs();
        let partition = if same_width {
            ckpt.partition()
        } else {
            BlockPartition::uniform(ckpt.n(), env.size())
        };
        let values = ckpt.values();
        let mut session =
            Self::setup_with_partition(env, graph, partition, kernel, |g| values[g], config);
        if same_width {
            session
                .monitor
                .restore_snapshot(&ckpt.monitors()[env.rank()]);
        }
        let iv = session.partition.interval_of(env.rank());
        let aux = ckpt
            .aux()
            .iter()
            .map(|(_, a)| a[iv.start..iv.end].to_vec())
            .collect();
        (session, aux)
    }

    /// Analyzes the protocol traces recorded so far: allgathers every
    /// rank's [`RankTrace`] and runs the offline analyzer over the full
    /// set (unmatched sends, phantom receives, payload-shape mismatches,
    /// leaked requests, barrier-arity mismatches, epoch-crossing
    /// messages — see [`stance_verify::analyze_traces`]). Every rank
    /// returns the same diagnostics; an empty vector means the traffic
    /// obeyed the protocol. Collective when verification is enabled;
    /// with it disabled there is nothing recorded and nothing to agree
    /// on, so this returns empty without communicating (the config is
    /// replicated, so all ranks skip together).
    pub fn verify_protocol<C: Comm>(&mut self, env: &mut C) -> Vec<Diagnostic> {
        match self.verify.as_deref() {
            None => Vec::new(),
            Some(trace) => analyze_collective(env, trace),
        }
    }

    /// The protocol trace recorded so far — `Some` iff the session was
    /// set up with `StanceConfig::with_verification(true)`.
    pub fn trace(&self) -> Option<&RankTrace> {
        self.verify.as_deref()
    }

    /// The paper's full execution structure: blocks of `check_interval`
    /// iterations separated by load-balance checks, for `total_iters`
    /// iterations. Collective.
    pub fn run_adaptive<C: Comm>(&mut self, env: &mut C, total_iters: usize) -> SessionReport {
        let mut report = SessionReport::default();
        let mut done = 0;
        while done < total_iters {
            let block = self.config.check_interval.min(total_iters - done);
            let stats = self.run_block(env, block);
            done += block;
            report.iterations += stats.iterations;
            report.compute_time += stats.compute_time;
            if done < total_iters && self.config.load_balancing_enabled() {
                let (remapped, check, rebalance) =
                    self.check_and_rebalance(env, total_iters - done);
                report.checks += 1;
                report.check_cost += check;
                if remapped {
                    report.remaps += 1;
                    report.rebalance_cost += rebalance;
                }
            }
        }
        report.total_time = env.now_secs();
        report
    }
}

/// Builds the schedule with the configured strategy, charging inspector
/// work to the rank's clock. Collective for [`ScheduleStrategy::Simple`].
/// The symmetric builders draw their working storage from `scratch`
/// (recycled across remaps); the simple strategy's three communication
/// rounds allocate as they always did — its cost is dominated by the
/// messages, not the allocator.
pub(crate) fn build_schedule<C: Comm>(
    env: &mut C,
    partition: &BlockPartition,
    adj: &LocalAdjacency,
    config: &StanceConfig,
    scratch: &mut ScheduleScratch,
) -> CommSchedule {
    match config.schedule_strategy {
        ScheduleStrategy::Sort1 | ScheduleStrategy::Sort2 => {
            let (schedule, work) = build_schedule_symmetric_with(
                partition,
                adj,
                env.rank(),
                config.schedule_strategy,
                scratch,
            );
            env.compute(config.inspector_cost.seconds(&work));
            schedule
        }
        ScheduleStrategy::Simple => {
            build_schedule_simple(env, partition, adj, &config.inspector_cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use stance_executor::sequential_relaxation;
    use stance_locality::meshgen;

    fn init(g: usize) -> f64 {
        (g as f64).cos() * 5.0
    }

    fn mesh() -> Graph {
        let raw = meshgen::triangulated_grid(12, 10, 0.4, 3);
        crate::prepare_mesh(&raw, OrderingMethod::Rcb).0
    }

    /// A balancer scaled to the tiny test mesh: the default hints assume the
    /// paper's 30k-vertex workload, where remap costs are repaid in a few
    /// iterations; at 120 vertices they would never be.
    fn test_balancer() -> BalancerConfig {
        BalancerConfig {
            redist_model: RedistCostModel {
                per_message: 1.0e-4,
                per_element: 1.0e-7,
            },
            rebuild_cost_hint: 1.0e-4,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        }
    }

    #[test]
    fn static_run_matches_sequential() {
        let m = mesh();
        let n = m.num_vertices();
        let iters = 20;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        for strategy in ScheduleStrategy::ALL {
            let m2 = m.clone();
            let config = StanceConfig::free().with_strategy(strategy);
            let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
            let report = Cluster::new(spec).run(move |env| {
                let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init, &config);
                s.run_adaptive(env, iters);
                s.local_values().to_vec()
            });
            let mut got = Vec::with_capacity(n);
            for r in report.into_results() {
                got.extend(r);
            }
            assert_eq!(got, expected, "{strategy:?} diverged");
        }
    }

    #[test]
    fn adaptive_run_with_remap_matches_sequential() {
        // Competing load on rank 0 forces a remap; values must still match
        // the sequential reference bitwise afterwards.
        let m = mesh();
        let n = m.num_vertices();
        let iters = 40;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        let m2 = m.clone();
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(move |env| {
            let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init, &config);
            let rep = s.run_adaptive(env, iters);
            let part = s.partition().clone();
            (rep, s.local_values().to_vec(), part)
        });
        let results: Vec<_> = report.into_results();
        let (rep0, _, final_part) = &results[0];
        assert!(rep0.remaps >= 1, "expected at least one remap: {rep0:?}");
        // The loaded rank should own fewer elements after the remap.
        let sizes = final_part.sizes();
        assert!(sizes[0] < sizes[1], "loaded rank kept too much: {sizes:?}");
        // Reassemble values in global order via each rank's final interval.
        let mut got = vec![0.0; n];
        for (rank, (_, values, _)) in results.iter().enumerate() {
            let iv = final_part.interval_of(rank);
            got[iv.start..iv.end].copy_from_slice(values);
        }
        assert_eq!(got, expected, "adaptive run diverged from sequential");
    }

    #[test]
    fn overlapped_adaptive_run_with_remap_matches_sequential() {
        // The split-phase gather must survive remaps (the rebuilt runner
        // re-classifies interior/boundary) and still match the sequential
        // reference bitwise.
        let m = mesh();
        let n = m.num_vertices();
        let iters = 40;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        let m2 = m.clone();
        let mut config = StanceConfig::default()
            .with_check_interval(10)
            .with_overlap(true);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(move |env| {
            let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init, &config);
            let rep = s.run_adaptive(env, iters);
            (rep, s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        assert!(
            results[0].0.remaps >= 1,
            "expected at least one remap: {:?}",
            results[0].0
        );
        let final_part = results[0].2.clone();
        let mut got = vec![0.0; n];
        for (rank, (_, values, _)) in results.iter().enumerate() {
            let iv = final_part.interval_of(rank);
            got[iv.start..iv.end].copy_from_slice(values);
        }
        assert_eq!(got, expected, "overlapped adaptive run diverged");
    }

    #[test]
    fn teamed_adaptive_run_with_remap_matches_sequential() {
        // Worker teams must survive remaps (lane splits recomputed from
        // the new classification) and stay bitwise-sequential, with load
        // balancing active and the split-phase gather on. The remap
        // decisions themselves may differ from the single-lane run — the
        // team-aware cost model changes what the balancer sees — but the
        // values may not.
        let m = mesh();
        let n = m.num_vertices();
        let iters = 40;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        let m2 = m.clone();
        let mut config = StanceConfig::default()
            .with_check_interval(10)
            .with_overlap(true)
            .with_team(3);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(move |env| {
            let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init, &config);
            let rep = s.run_adaptive(env, iters);
            (rep, s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        assert!(
            results[0].0.remaps >= 1,
            "expected at least one remap: {:?}",
            results[0].0
        );
        let final_part = results[0].2.clone();
        let mut got = vec![0.0; n];
        for (rank, (_, values, _)) in results.iter().enumerate() {
            let iv = final_part.interval_of(rank);
            got[iv.start..iv.end].copy_from_slice(values);
        }
        assert_eq!(got, expected, "teamed adaptive run diverged");
    }

    #[test]
    fn load_balancing_reduces_adaptive_runtime() {
        let m = mesh();
        let iters = 50;
        let run = |lb: bool| {
            let m = m.clone();
            let mut config = if lb {
                StanceConfig::default().with_check_interval(10)
            } else {
                StanceConfig::default().without_load_balancing()
            };
            config.balancer = test_balancer();
            // Zero-cost network isolates the load-balancing effect: at 120
            // vertices, Ethernet message latency would swamp the compute
            // imbalance (the full-scale effect is measured by the Table 5
            // harness).
            let spec = ClusterSpec::uniform(2)
                .with_network(NetworkSpec::zero_cost())
                .with_load(0, LoadTimeline::constant(1.0 / 3.0));
            Cluster::new(spec)
                .run(move |env| {
                    let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
                    s.run_adaptive(env, iters)
                })
                .ranks
                .iter()
                .map(|r| r.clock.as_secs())
                .fold(0.0, f64::max)
        };
        let with_lb = run(true);
        let without_lb = run(false);
        assert!(
            with_lb < without_lb * 0.8,
            "load balancing should help: {with_lb} vs {without_lb}"
        );
    }

    #[test]
    fn no_remap_when_balanced() {
        let m = mesh();
        let config = StanceConfig::default();
        let spec = ClusterSpec::paper_cluster(3);
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            s.run_adaptive(env, 30)
        });
        for rep in report.results() {
            assert_eq!(rep.remaps, 0, "balanced cluster must not remap: {rep:?}");
            assert_eq!(rep.checks, 2);
            assert!(rep.check_cost > 0.0);
            assert_eq!(rep.rebalance_cost, 0.0);
        }
    }

    #[test]
    fn report_counters_consistent() {
        let m = mesh();
        let config = StanceConfig::free().with_check_interval(7);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            s.run_adaptive(env, 21)
        });
        for rep in report.results() {
            assert_eq!(rep.iterations, 21);
            assert_eq!(rep.checks, 2); // after blocks 1 and 2, none after the last
        }
    }

    #[test]
    fn aux_arrays_follow_a_forced_remap() {
        // An auxiliary per-vertex array passed to check_and_rebalance_named
        // must land on the same owners as the session's values.
        let m = mesh();
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(2)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            // aux[g] = 3g so ownership is trivially checkable.
            let mut aux: Vec<f64> = s
                .partition()
                .interval_of(env.rank())
                .iter()
                .map(|g| 3.0 * g as f64)
                .collect();
            let mut remapped_once = false;
            for _ in 0..4 {
                s.run_block(env, 10);
                let (remapped, _, _) =
                    s.check_and_rebalance_named(env, 10, &mut [("aux", &mut aux)]);
                remapped_once |= remapped;
            }
            let iv = s.partition().interval_of(env.rank());
            assert_eq!(aux.len(), iv.len(), "aux length follows the partition");
            for (offset, g) in iv.iter().enumerate() {
                assert_eq!(aux[offset], 3.0 * g as f64, "aux element strayed");
            }
            remapped_once
        });
        assert!(
            report.into_results().into_iter().all(|r| r),
            "the forced load should have remapped at least once"
        );
    }

    /// Regression (monitor continuity): `apply_remap` used to reset the
    /// monitor outright, so a rank that records nothing after the remap
    /// (here: its new block is empty) reported `per_item = 0.0` at the
    /// next check. The controller's fallback then treats the silent rank
    /// as average-speed and thrashes work straight back onto a machine
    /// that is 1000x slower. With the carried estimate, the first
    /// post-remap check is informed and keeps the work where it belongs.
    #[test]
    fn first_post_remap_check_is_informed_on_empty_blocks() {
        let m = mesh();
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(2)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0e-3));
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            s.run_block(env, 10);
            let (first, _, _) = s.check_and_rebalance(env, 10_000);
            let sizes = s.partition().sizes();
            // Post-remap block: an empty block records no sample on the
            // loaded rank …
            s.run_block(env, 10);
            // … yet the per-item estimate is carried across the remap.
            let informed = s.per_item_estimate().is_some();
            let (second, _, _) = s.check_and_rebalance(env, 10_000);
            (first, sizes, informed, second)
        });
        for (first, sizes, informed, second) in report.results() {
            assert!(*first, "the 1000x load must trigger the first remap");
            assert_eq!(sizes[0], 0, "the loaded rank should own nothing: {sizes:?}");
            assert!(*informed, "the estimate must survive the remap");
            assert!(
                !*second,
                "an informed post-remap check must not thrash work back"
            );
        }
    }

    /// Anti-starvation companion to the carried-estimate fix: a silenced
    /// rank (empty block, so no measurements can refute its carried
    /// estimate) answers a bounded number of checks from the carry, after
    /// which the estimate expires and the controller's average-capability
    /// fallback probes the rank with work again. If the machine is still
    /// slow, the very next check measures that and moves the work away; if
    /// the transient load is gone, the probe is what hands the cluster its
    /// capacity back — either way the rank is never starved forever.
    #[test]
    fn carry_expiry_probes_a_silenced_rank() {
        let m = mesh();
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(2)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0e-3));
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            s.run_block(env, 10);
            let (first, _, _) = s.check_and_rebalance(env, 10_000);
            let emptied = s.partition().sizes()[0] == 0;
            // Carried-estimate checks: informed Keeps, no thrash.
            let mut kept = 0;
            for _ in 0..3 {
                s.run_block(env, 10);
                let (remapped, _, _) = s.check_and_rebalance(env, 10_000);
                kept += usize::from(!remapped);
            }
            // Budget exhausted: the next check probes the silent rank.
            s.run_block(env, 10);
            let (probed, _, _) = s.check_and_rebalance(env, 10_000);
            let probe_sizes = s.partition().sizes();
            // The probe hands the rank real work, it measures (still slow),
            // and the following check moves the work away again.
            s.run_block(env, 10);
            let (corrected, _, _) = s.check_and_rebalance(env, 10_000);
            let final_sizes = s.partition().sizes();
            (
                first,
                emptied,
                kept,
                probed,
                probe_sizes,
                corrected,
                final_sizes,
            )
        });
        for (first, emptied, kept, probed, probe_sizes, corrected, final_sizes) in report.results()
        {
            assert!(*first && *emptied, "setup: loaded rank should be emptied");
            assert_eq!(*kept, 3, "carried checks must keep the assignment");
            assert!(*probed, "expired carry must trigger a probe remap");
            assert!(
                probe_sizes[0] > 0,
                "the probe should hand the silent rank work: {probe_sizes:?}"
            );
            assert!(*corrected, "fresh slow measurements must move work away");
            assert!(
                final_sizes[0] < probe_sizes[0],
                "correction should shrink the slow rank again: {final_sizes:?} vs {probe_sizes:?}"
            );
        }
    }

    /// Calibration closes the controller's feedback loop: an absurdly
    /// wrong static `rebuild_cost_hint` blocks every remap, but once one
    /// (forced) remap has been *measured*, a calibrated session charges
    /// the observed cost and adapts again — while an uncalibrated session
    /// stays stuck with the hint. Calibration is opt-in; with the flag off
    /// the decision inputs are untouched.
    #[test]
    fn calibration_replaces_static_hint_after_first_remap() {
        let m = mesh();
        let n = m.num_vertices();
        let run = |calibrate: bool| {
            let m = m.clone();
            let mut config = StanceConfig::default()
                .with_check_interval(10)
                .with_calibration(calibrate);
            config.balancer = test_balancer();
            config.balancer.rebuild_cost_hint = 1.0e9; // absurdly wrong
            let spec = ClusterSpec::uniform(2)
                .with_network(NetworkSpec::zero_cost())
                .with_load(0, LoadTimeline::constant(1.0 / 3.0));
            let report = Cluster::new(spec).run(move |env| {
                let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
                s.run_block(env, 10);
                let (pre, _, _) = s.check_and_rebalance(env, 100_000);
                // Force (and thereby measure) one remap out-of-band.
                s.remap_to(
                    env,
                    BlockPartition::from_sizes(&[n / 2 - 10, n / 2 + 10]),
                    &mut [],
                );
                let measured = s.calibrated_rebuild_cost();
                s.run_block(env, 10);
                let (post, _, _) = s.check_and_rebalance(env, 100_000);
                (pre, measured, post)
            });
            report.into_results()
        };
        for (pre, measured, post) in run(false) {
            assert!(!pre, "the absurd hint must block the first check");
            let m = measured.expect("the forced remap was measured");
            assert!(m > 0.0 && m < 1.0, "measured rebuild cost looks wrong: {m}");
            assert!(!post, "without calibration the hint still blocks remaps");
        }
        for (pre, _, post) in run(true) {
            assert!(!pre, "no measurement yet: the hint is the prior");
            assert!(
                post,
                "calibrated check must charge the measured cost and remap"
            );
        }
    }

    /// Distributed-mode calibration agrees collectively (max over ranks),
    /// so every rank reaches the same decision and the run completes with
    /// identical reports.
    #[test]
    fn calibration_agrees_in_distributed_mode() {
        let m = mesh();
        let mut config = StanceConfig::default()
            .with_check_interval(10)
            .with_calibration(true);
        config.balancer = test_balancer();
        config.balancer.mode = ControllerMode::Distributed;
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            let rep = s.run_adaptive(env, 60);
            (rep.remaps, rep.checks, s.partition().sizes())
        });
        let results: Vec<_> = report.into_results();
        assert!(results[0].0 >= 1, "the load should trigger a remap");
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "ranks disagreed under distributed calibration: {results:?}"
        );
    }

    /// `remap_to` is the deterministic repartitioning entry point: an
    /// explicit chain of forced remaps must keep values bitwise equal to
    /// the sequential reference, and an identity remap must be free.
    #[test]
    fn forced_remap_chain_matches_sequential() {
        let m = mesh();
        let n = m.num_vertices();
        let iters = 30;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            let phases = [
                BlockPartition::from_sizes(&[20, 40, 60]),
                BlockPartition::from_sizes(&[60, 40, 20]),
                BlockPartition::uniform(n, 3),
            ];
            for part in phases {
                s.run_block(env, iters / 6);
                s.remap_to(env, part, &mut []);
                s.run_block(env, iters / 6);
            }
            // Identity remap: a no-op — no messages, same partition.
            let msgs_before = env.stats().messages_sent;
            let ident = s.partition().clone();
            s.remap_to(env, ident, &mut []);
            assert_eq!(
                env.stats().messages_sent,
                msgs_before,
                "identity must be free"
            );
            (s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        let partition = results[0].1.clone();
        let blocks = results.into_iter().map(|(v, _)| v).collect();
        assert_eq!(
            crate::reassemble(&partition, blocks),
            expected,
            "forced remap chain diverged from sequential"
        );
    }

    /// Verification is numerically free: a verified adaptive run (audits
    /// after setup and every remap, all p2p traffic traced) produces
    /// bitwise the same values as the sequential reference, and the
    /// collected traces analyze clean.
    #[test]
    fn verified_adaptive_run_is_clean_and_bitwise_identical() {
        let m = mesh();
        let n = m.num_vertices();
        let iters = 40;
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, iters);

        let m2 = m.clone();
        let mut config = StanceConfig::default()
            .with_check_interval(10)
            .with_verification(true);
        config.balancer = test_balancer();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(move |env| {
            let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init, &config);
            let rep = s.run_adaptive(env, iters);
            let diags = s.verify_protocol(env);
            let events = s.trace().map_or(0, |t| t.events.len());
            (
                rep,
                s.local_values().to_vec(),
                s.partition().clone(),
                diags,
                events,
            )
        });
        let results: Vec<_> = report.into_results();
        assert!(
            results[0].0.remaps >= 1,
            "the forced load should remap under verification too: {:?}",
            results[0].0
        );
        for (rank, (_, _, _, diags, events)) in results.iter().enumerate() {
            assert!(
                diags.is_empty(),
                "rank {rank} protocol diagnostics: {diags:?}"
            );
            assert!(*events > 0, "rank {rank} recorded no events");
        }
        let final_part = results[0].2.clone();
        let mut got = vec![0.0; n];
        for (rank, (_, values, _, _, _)) in results.iter().enumerate() {
            let iv = final_part.interval_of(rank);
            got[iv.start..iv.end].copy_from_slice(values);
        }
        assert_eq!(got, expected, "verified adaptive run diverged");
    }

    /// With verification off the protocol check is a local no-op: no
    /// trace exists, no messages move, the returned report is empty.
    #[test]
    fn verify_protocol_is_free_when_disabled() {
        let m = mesh();
        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            s.run_block(env, 5);
            let msgs = env.stats().messages_sent;
            let diags = s.verify_protocol(env);
            (
                diags.is_empty(),
                s.trace().is_none(),
                env.stats().messages_sent == msgs,
            )
        });
        for (empty, no_trace, no_msgs) in report.results() {
            assert!(*empty && *no_trace && *no_msgs);
        }
    }

    /// A checkpoint is replicated and restoring it onto the same rank
    /// count continues bitwise-identically to the uninterrupted run —
    /// values, aux arrays and monitor state all survive the round trip.
    #[test]
    fn checkpoint_restore_same_width_is_bitwise() {
        let m = mesh();
        let iters = 10;
        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            let aux: Vec<f64> = s
                .partition()
                .interval_of(env.rank())
                .iter()
                .map(|g| 2.0 * g as f64)
                .collect();
            s.run_block(env, iters);
            let ckpt = s.checkpoint(env, &[&aux]);
            // Uninterrupted continuation …
            s.run_block(env, iters);
            let uninterrupted = s.local_values().to_vec();
            // … versus a fresh session restored from the checkpoint.
            let (mut r, raux) = AdaptiveSession::<f64, RelaxationKernel>::restore(
                env,
                &m,
                RelaxationKernel,
                &ckpt,
                &config,
            );
            assert_eq!(raux.len(), 1);
            assert_eq!(raux[0], aux, "aux array must survive the round trip");
            assert_eq!(
                r.per_item_estimate().map(f64::to_bits),
                s.per_item_estimate().map(f64::to_bits),
                "monitor estimate must be restored bit-for-bit"
            );
            r.run_block(env, iters);
            (uninterrupted, r.local_values().to_vec())
        });
        for (uninterrupted, restored) in report.results() {
            assert_eq!(uninterrupted, restored, "restored run diverged");
        }
    }

    /// Restoring onto a *different* rank count (the shrink path) lands on
    /// the uniform partition and continues correctly: a 2-rank restore of
    /// a 4-rank checkpoint finishes bitwise-identical to the sequential
    /// reference.
    #[test]
    fn restore_onto_fewer_ranks_matches_sequential() {
        let m = mesh();
        let n = m.num_vertices();
        let (first, rest) = (10, 20);
        let mut expected: Vec<f64> = (0..n).map(init).collect();
        sequential_relaxation(&m, &mut expected, first + rest);

        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
        let blob = Cluster::new(spec)
            .run(|env| {
                let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
                s.run_block(env, first);
                s.checkpoint(env, &[]).to_bytes()
            })
            .into_results()
            .pop()
            .expect("one blob per rank");
        let ckpt = SessionCheckpoint::<f64>::from_bytes(&blob);
        assert_eq!(ckpt.num_procs(), 4);

        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let (mut s, aux) = AdaptiveSession::<f64, RelaxationKernel>::restore(
                env,
                &m,
                RelaxationKernel,
                &ckpt,
                &config,
            );
            assert!(aux.is_empty());
            s.run_block(env, rest);
            (s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        let partition = results[0].1.clone();
        let blocks = results.into_iter().map(|(v, _)| v).collect();
        assert_eq!(
            crate::reassemble(&partition, blocks),
            expected,
            "cross-width restore diverged from sequential"
        );
    }

    #[test]
    #[should_panic(expected = "partition has")]
    fn setup_rejects_wrong_partition_width() {
        let m = mesh();
        let config = StanceConfig::free();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let bad = BlockPartition::uniform(m.num_vertices(), 3);
            let _ = AdaptiveSession::setup_with_partition(
                env,
                &m,
                bad,
                RelaxationKernel,
                init,
                &config,
            );
        });
    }
}
