//! # STANCE — runtime support for data-parallel applications on adaptive
//! and nonuniform computational environments
//!
//! A from-scratch Rust reproduction of the runtime library described in
//! Kaddoura & Ranka, *"Runtime Support for Parallelization of Data-Parallel
//! Applications on Adaptive and Nonuniform Computational Environments"*
//! (HPDC 1996). The library parallelizes iterative unstructured data-parallel
//! applications (sparse relaxation over meshes) on clusters whose machines
//! differ in speed (*nonuniform*) and whose available capacity changes over
//! time (*adaptive*), through four phases (the paper's Fig. 1):
//!
//! | Phase | Component | Crate |
//! |-------|-----------|-------|
//! | A — data partitioning | 1-D locality transform + block partitions | [`locality`], [`onedim`] |
//! | B — inspector | translation tables + communication schedules | [`inspector`] |
//! | C — executor | gather/scatter + the irregular kernel | [`executor`] |
//! | D — load balancing | monitor, controller, MCR, redistribution | [`balance`] |
//!
//! The cluster itself — heterogeneous workstations on an Ethernet-era
//! network — is simulated deterministically by [`sim`] (one thread per rank,
//! real data movement, virtual clocks).
//!
//! ## Quickstart
//!
//! ```
//! use stance::prelude::*;
//!
//! // A small unstructured mesh, reordered for locality (Phase A).
//! let mesh = stance::locality::meshgen::triangulated_grid(16, 16, 0.4, 7);
//! let (mesh, _ordering) = stance::prepare_mesh(&mesh, OrderingMethod::Rcb);
//!
//! // Three equal workstations; run 50 iterations of the Fig. 8 loop.
//! let spec = ClusterSpec::uniform(3);
//! let config = StanceConfig::default();
//! let report = Cluster::new(spec).run(|env| {
//!     let mut session = AdaptiveSession::setup(env, &mesh, |g| g as f64, &config);
//!     session.run_adaptive(env, 50)
//! });
//! assert!(report.makespan() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod efficiency;
pub mod scenarios;
pub mod session;

pub use config::StanceConfig;
pub use efficiency::{adaptive_efficiency, static_efficiency};
pub use session::{AdaptiveSession, SessionReport};

/// Re-export: the cluster simulator / messaging substrate.
pub use stance_sim as sim;

/// Re-export: Phase A (graphs, orderings, mesh generators).
pub use stance_locality as locality;

/// Re-export: 1-D partitions, arrangements, MCR.
pub use stance_onedim as onedim;

/// Re-export: Phase B (translation, schedules).
pub use stance_inspector as inspector;

/// Re-export: Phase C (gather/scatter, kernel).
pub use stance_executor as executor;

/// Re-export: Phase D (monitoring, controller, redistribution).
pub use stance_balance as balance;

use stance_locality::{compute_ordering, Graph, Ordering, OrderingMethod};

/// Phase A in one call: computes the 1-D ordering of `graph` with `method`
/// and relabels the graph along it. Returns the reordered graph and the
/// ordering (to map results back to original vertex ids).
pub fn prepare_mesh(graph: &Graph, method: OrderingMethod) -> (Graph, Ordering) {
    let ordering = compute_ordering(graph, method);
    (ordering.apply(graph), ordering)
}

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::config::StanceConfig;
    pub use crate::efficiency::{adaptive_efficiency, static_efficiency};
    pub use crate::prepare_mesh;
    pub use crate::session::{AdaptiveSession, SessionReport};
    pub use stance_balance::{BalancerConfig, CapabilityEstimator, ControllerMode, Decision};
    pub use stance_executor::ComputeCostModel;
    pub use stance_inspector::{InspectorCostModel, ScheduleStrategy};
    pub use stance_locality::{Graph, Ordering, OrderingMethod};
    pub use stance_onedim::{Arrangement, BlockPartition, RedistCostModel};
    pub use stance_sim::{
        Cluster, ClusterSpec, Env, LoadTimeline, MachineSpec, NetworkSpec, Payload, Tag,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_mesh_round_trip() {
        let mesh = locality::meshgen::triangulated_grid(6, 6, 0.2, 1);
        let (ordered, o) = prepare_mesh(&mesh, OrderingMethod::Hilbert);
        assert_eq!(ordered.num_vertices(), mesh.num_vertices());
        assert_eq!(ordered.num_edges(), mesh.num_edges());
        // The ordering maps original vertex v to its new id.
        for v in 0..mesh.num_vertices() {
            assert_eq!(ordered.coord(o.position_of(v)), mesh.coord(v));
        }
    }
}
