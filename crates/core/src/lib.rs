//! # STANCE — runtime support for data-parallel applications on adaptive
//! and nonuniform computational environments
//!
//! A from-scratch Rust reproduction of the runtime library described in
//! Kaddoura & Ranka, *"Runtime Support for Parallelization of Data-Parallel
//! Applications on Adaptive and Nonuniform Computational Environments"*
//! (HPDC 1996). The library parallelizes iterative unstructured data-parallel
//! applications (sparse sweeps over meshes) on clusters whose machines
//! differ in speed (*nonuniform*) and whose available capacity changes over
//! time (*adaptive*), through four phases (the paper's Fig. 1):
//!
//! | Phase | Component | Crate |
//! |-------|-----------|-------|
//! | A — data partitioning | 1-D locality transform + block partitions | [`locality`], [`onedim`] |
//! | B — inspector | translation tables + communication schedules | [`inspector`] |
//! | C — executor | gather/scatter + the application's kernel | [`executor`] |
//! | D — load balancing | monitor, controller, MCR, redistribution | [`balance`] |
//!
//! The cluster itself — heterogeneous workstations on an Ethernet-era
//! network — is simulated deterministically by [`sim`] (one thread per rank,
//! real data movement, virtual clocks).
//!
//! ## The application API: `Element` + `Kernel`
//!
//! The runtime owns partitioning, ghost exchange, scheduling and load
//! balancing; the *application* supplies exactly two things:
//!
//! * an [`Element`](sim::Element) — the fixed-size, `Copy`, byte-serializable
//!   per-vertex state (`f64` for the paper's arrays, `[f64; K]` for
//!   multi-field state, or any custom record);
//! * a [`Kernel`](executor::Kernel) — the sweep that reads the gathered
//!   (owned ++ ghost) buffer through the translated adjacency and writes one
//!   output per owned vertex, plus an optional cost hook that keeps
//!   virtual-time accounting honest for non-default arithmetic.
//!
//! Two kernels ship in-tree: [`RelaxationKernel`](executor::RelaxationKernel)
//! (the paper's Fig. 8 loop) and
//! [`LaplacianKernel`](executor::LaplacianKernel) (the matvec behind the
//! `cg_solver` example). Everything else — `GhostedArray`, gather/scatter,
//! redistribution, [`AdaptiveSession`] — is generic over them.
//!
//! A custom element needs only `zero`/`write_bytes`/`read_bytes`. If it is
//! a plain fixed-size record *and* ghost exchange shows up in profiles,
//! also override the bulk codecs
//! [`pack_into`](sim::Element::pack_into)/[`unpack_into`](sim::Element::unpack_into)
//! with memcpy-class copies: that is what keeps the runtime's steady-state
//! communication path allocation-free and at memory-bandwidth speed (the
//! built-in elements all do; the override must stay byte-identical to the
//! per-element loop — see the README's *Wire format & transport*).
//!
//! ## Quickstart
//!
//! ```
//! use stance::prelude::*;
//!
//! // A small unstructured mesh, reordered for locality (Phase A).
//! let mesh = stance::locality::meshgen::triangulated_grid(16, 16, 0.4, 7);
//! let (mesh, _ordering) = stance::prepare_mesh(&mesh, OrderingMethod::Rcb);
//!
//! // Three equal workstations; run 50 iterations of the Fig. 8 loop.
//! let spec = ClusterSpec::uniform(3);
//! let config = StanceConfig::default();
//! let report = Cluster::new(spec).run(|env| {
//!     let mut session =
//!         AdaptiveSession::setup(env, &mesh, RelaxationKernel, |g| g as f64, &config);
//!     session.run_adaptive(env, 50)
//! });
//! assert!(report.makespan() > 0.0);
//! ```
//!
//! ## Writing your own kernel
//!
//! A new workload is a type implementing `Kernel<E>` — typically a few
//! dozen lines, with partitioning, communication and load balancing
//! inherited from the session:
//!
//! ```
//! use stance::prelude::*;
//! use stance::inspector::TranslatedAdjacency;
//!
//! /// Diffusion with a per-step decay: out = 0.9 · avg(neighbors).
//! struct DecayKernel;
//!
//! impl<E: Field> Kernel<E> for DecayKernel {
//!     fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[E], out: &mut [E]) {
//!         for (l, o) in out.iter_mut().enumerate() {
//!             let nbrs = tadj.neighbors_of(l);
//!             if nbrs.is_empty() {
//!                 *o = combined[l];
//!                 continue;
//!             }
//!             let mut t = E::zero();
//!             for &s in nbrs {
//!                 t = t.add(combined[s as usize]);
//!             }
//!             *o = t.div(nbrs.len() as f64).scale(0.9);
//!         }
//!     }
//! }
//!
//! let mesh = stance::locality::meshgen::triangulated_grid(8, 8, 0.2, 1);
//! let config = StanceConfig::free();
//! // Multi-field state: each vertex carries a [f64; 2].
//! let report = Cluster::new(ClusterSpec::uniform(2)).run(|env| {
//!     let mut session =
//!         AdaptiveSession::setup(env, &mesh, DecayKernel, |g| [g as f64, 1.0], &config);
//!     session.run_adaptive(env, 10);
//!     session.local_values().to_vec()
//! });
//! assert_eq!(report.ranks.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod dataflow;
pub mod efficiency;
pub mod recovery;
pub mod scenarios;
pub mod session;

pub use checkpoint::SessionCheckpoint;
pub use config::{DetectorConfig, RecoveryPolicy, StanceConfig};
pub use dataflow::{DataflowSession, FieldSet, StageGraph, StageGraphBuilder};
pub use efficiency::{adaptive_efficiency, static_efficiency};
pub use recovery::{probe_and_decide, probe_membership, survivors_of, RecoveryAction};
pub use session::{AdaptiveSession, SessionReport};

/// Re-export: the cluster simulator / messaging substrate.
pub use stance_sim as sim;

/// Re-export: Phase A (graphs, orderings, mesh generators).
pub use stance_locality as locality;

/// Re-export: 1-D partitions, arrangements, MCR.
pub use stance_onedim as onedim;

/// Re-export: Phase B (translation, schedules).
pub use stance_inspector as inspector;

/// Re-export: Phase C (gather/scatter, kernels).
pub use stance_executor as executor;

/// Re-export: Phase D (monitoring, controller, redistribution).
pub use stance_balance as balance;

/// Re-export: the SPMD-contract verifier (schedule audit + protocol
/// checker), driven by `StanceConfig::with_verification`.
pub use stance_verify as verify;

use stance_locality::{compute_ordering, Graph, Ordering, OrderingMethod};
use stance_onedim::BlockPartition;
use stance_sim::Element;

/// Phase A in one call: computes the 1-D ordering of `graph` with `method`
/// and relabels the graph along it. Returns the reordered graph and the
/// ordering (to map results back to original vertex ids).
pub fn prepare_mesh(graph: &Graph, method: OrderingMethod) -> (Graph, Ordering) {
    let ordering = compute_ordering(graph, method);
    (ordering.apply(graph), ordering)
}

/// Reassembles per-rank local blocks into a single global vector, given the
/// final partition. Examples and tests use this to compare a distributed
/// result against a sequential reference.
///
/// # Panics
/// Panics if the number of blocks or any block length does not match the
/// partition.
pub fn reassemble<E: Element>(partition: &BlockPartition, blocks: Vec<Vec<E>>) -> Vec<E> {
    assert_eq!(
        blocks.len(),
        partition.num_procs(),
        "one block per processor"
    );
    let mut out = vec![E::zero(); partition.n()];
    for (rank, block) in blocks.into_iter().enumerate() {
        let iv = partition.interval_of(rank);
        assert_eq!(block.len(), iv.len(), "rank {rank} block size mismatch");
        out[iv.start..iv.end].copy_from_slice(&block);
    }
    out
}

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::checkpoint::SessionCheckpoint;
    pub use crate::config::{DetectorConfig, RecoveryPolicy, StanceConfig};
    pub use crate::dataflow::{DataflowSession, FieldSet, StageGraph, StageGraphBuilder};
    pub use crate::efficiency::{adaptive_efficiency, static_efficiency};
    pub use crate::prepare_mesh;
    pub use crate::reassemble;
    pub use crate::recovery::{probe_and_decide, probe_membership, survivors_of, RecoveryAction};
    pub use crate::session::{AdaptiveSession, SessionReport};
    pub use stance_balance::{BalancerConfig, CapabilityEstimator, ControllerMode, Decision};
    pub use stance_executor::{
        CommBuffers, ComputeCostModel, Field, GhostedArray, Kernel, LaplacianKernel, LoopRunner,
        RelaxationKernel,
    };
    pub use stance_inspector::{InspectorCostModel, ScheduleStrategy};
    pub use stance_locality::{Graph, Ordering, OrderingMethod};
    pub use stance_onedim::{Arrangement, BlockPartition, RedistCostModel};
    pub use stance_sim::{
        Cluster, ClusterSpec, Comm, Element, Env, LoadTimeline, MachineSpec, NetworkSpec, Payload,
        SurvivorComm, Tag,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_mesh_round_trip() {
        let mesh = locality::meshgen::triangulated_grid(6, 6, 0.2, 1);
        let (ordered, o) = prepare_mesh(&mesh, OrderingMethod::Hilbert);
        assert_eq!(ordered.num_vertices(), mesh.num_vertices());
        assert_eq!(ordered.num_edges(), mesh.num_edges());
        // The ordering maps original vertex v to its new id.
        for v in 0..mesh.num_vertices() {
            assert_eq!(ordered.coord(o.position_of(v)), mesh.coord(v));
        }
    }

    #[test]
    fn reassemble_orders_blocks() {
        let part = BlockPartition::from_sizes(&[2, 3]);
        let out = reassemble(&part, vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]]);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn reassemble_is_generic_over_elements() {
        let part = BlockPartition::from_sizes(&[1, 2]);
        let out = reassemble(&part, vec![vec![[1.0, 2.0]], vec![[3.0, 4.0], [5.0, 6.0]]]);
        assert_eq!(out, vec![[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]);
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn reassemble_checks_sizes() {
        let part = BlockPartition::from_sizes(&[2, 2]);
        let _ = reassemble(&part, vec![vec![1.0], vec![2.0, 3.0]]);
    }
}
