//! The native SPMD launcher: one OS thread per rank.

use std::sync::Arc;
use std::time::Instant;

use stance_sim::launch::{run_ranks, BarrierShared};
use stance_sim::mailbox::mailbox_matrix;

use crate::comm::{NativeComm, NativeMsg};

/// Outcome of one rank's native execution.
#[derive(Debug)]
pub struct NativeRankReport<R> {
    /// Value returned by the SPMD closure on this rank.
    pub result: R,
    /// Wall-clock seconds from run start to this rank's return.
    pub elapsed_secs: f64,
}

/// Outcome of a whole native run.
#[derive(Debug)]
pub struct NativeRunReport<R> {
    /// Per-rank outcomes, indexed by rank.
    pub ranks: Vec<NativeRankReport<R>>,
}

impl<R> NativeRunReport<R> {
    /// The completion time of the run: the slowest rank's wall-clock
    /// seconds.
    pub fn makespan(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.elapsed_secs)
            .fold(0.0, f64::max)
    }

    /// The per-rank results, consuming the report.
    pub fn into_results(self) -> Vec<R> {
        self.ranks.into_iter().map(|r| r.result).collect()
    }

    /// Borrowed per-rank results.
    pub fn results(&self) -> impl Iterator<Item = &R> {
        self.ranks.iter().map(|r| &r.result)
    }
}

/// The native SPMD launcher: runs a closure on `threads` real OS threads,
/// one rank each, communicating through [`NativeComm`].
#[derive(Debug, Clone)]
pub struct NativeCluster {
    threads: usize,
}

impl NativeCluster {
    /// A launcher for `threads` ranks.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a native cluster needs at least one thread");
        NativeCluster { threads }
    }

    /// Number of ranks (= OS threads) a run will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` as an SPMD program: one invocation per rank, each on its
    /// own OS thread with its own [`NativeComm`]. Returns when every rank
    /// has finished.
    ///
    /// # Panics
    /// If any rank panics, the whole run fails with the **first** panic's
    /// original payload (message). A failing rank poisons the barrier and
    /// closes its mailboxes, so peers blocked in `recv` or `barrier` abort
    /// instead of deadlocking; their secondary panics are swallowed in
    /// favour of the original one (the protocol lives in
    /// [`stance_sim::launch`], shared with the simulator's launcher).
    pub fn run<R, F>(&self, f: F) -> NativeRunReport<R>
    where
        R: Send,
        F: Fn(&mut NativeComm) -> R + Send + Sync,
    {
        let p = self.threads;
        let barrier = BarrierShared::new(p, 0.0);
        let start = Instant::now();

        let comms: Vec<NativeComm> = mailbox_matrix::<NativeMsg>(p)
            .into_iter()
            .enumerate()
            .map(|(rank, (txs, rxs))| {
                NativeComm::new(rank, p, start, txs, rxs, Arc::clone(&barrier))
            })
            .collect();

        let ranks = run_ranks(
            "native-rank-",
            comms,
            || barrier.poison(),
            &f,
            |_, result| NativeRankReport {
                result,
                elapsed_secs: start.elapsed().as_secs_f64(),
            },
        );
        NativeRunReport { ranks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_sim::{Comm, Payload, Tag};

    #[test]
    fn single_rank_runs() {
        let report = NativeCluster::new(1).run(|comm| comm.rank());
        assert_eq!(report.into_results(), vec![0]);
    }

    #[test]
    fn send_recv_moves_data() {
        let report = NativeCluster::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(1), Payload::from_f64(vec![42.0]));
                0.0
            } else {
                comm.recv(0, Tag(1)).into_f64()[0]
            }
        });
        assert_eq!(report.into_results(), vec![0.0, 42.0]);
    }

    #[test]
    fn tag_mismatch_is_buffered() {
        NativeCluster::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(10), Payload::from_u32(vec![10]));
                comm.send(1, Tag(20), Payload::from_u32(vec![20]));
            } else {
                assert_eq!(comm.recv(0, Tag(20)).into_u32(), vec![20]);
                assert_eq!(comm.recv(0, Tag(10)).into_u32(), vec![10]);
            }
        });
    }

    #[test]
    fn collectives_agree_with_rank_order() {
        let report = NativeCluster::new(4).run(|comm| {
            let all = comm.allgather(Tag(5), Payload::from_u32(vec![comm.rank() as u32]));
            let ids: Vec<u32> = all
                .into_iter()
                .flat_map(stance_sim::Payload::into_u32)
                .collect();
            assert_eq!(ids, vec![0, 1, 2, 3]);
            comm.allreduce_f64(Tag(6), (comm.rank() + 1) as f64, |a, b| a + b)
        });
        for total in report.results() {
            assert_eq!(*total, 10.0);
        }
    }

    #[test]
    fn wall_clock_is_monotone_and_shared() {
        let report = NativeCluster::new(2).run(|comm| {
            let t0 = comm.now_secs();
            comm.barrier();
            std::thread::sleep(std::time::Duration::from_millis(5));
            let t1 = comm.now_secs();
            assert!(t1 > t0, "wall clock must advance");
            t1
        });
        assert!(report.makespan() >= 0.005);
    }

    #[test]
    fn compute_hook_is_free() {
        let report = NativeCluster::new(1).run(|comm| {
            let t0 = comm.now_secs();
            comm.compute(1.0e9); // a billion reference seconds, charged to nobody
            comm.now_secs() - t0
        });
        assert!(report.into_results()[0] < 0.5);
    }

    #[test]
    #[should_panic(expected = "original boom")]
    fn rank_panic_unblocks_peers_in_barrier() {
        NativeCluster::new(3).run(|comm| {
            if comm.rank() == 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("original boom");
            }
            comm.barrier();
        });
    }

    #[test]
    #[should_panic(expected = "original boom")]
    fn rank_panic_unblocks_peers_in_recv() {
        NativeCluster::new(2).run(|comm| {
            if comm.rank() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("original boom");
            }
            comm.recv(1, Tag(1));
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = NativeCluster::new(0);
    }
}
