//! One rank's handle onto the native thread-pool cluster.

use std::sync::Arc;
use std::time::Instant;

use stance_sim::launch::BarrierShared;
use stance_sim::mailbox::{MailboxReceiver, MailboxSender, TagBuffer, Tagged};
use stance_sim::time::VTime;
use stance_sim::{Comm, Payload, RecvRequest, Tag};

/// A message between two native ranks: no arrival stamp — delivery is
/// whenever the receiving thread gets to it.
pub(crate) struct NativeMsg {
    pub tag: Tag,
    pub payload: Payload,
}

impl Tagged for NativeMsg {
    fn tag(&self) -> Tag {
        self.tag
    }
}

/// One rank's handle onto a [`NativeCluster`](crate::NativeCluster) run:
/// the wall-clock [`Comm`] backend.
///
/// Point-to-point transport is the simulator's warm mailbox (one FIFO
/// deque per (source, destination) pair); tag-mismatched messages are
/// buffered per source exactly as the simulator buffers them, so receive
/// semantics (FIFO per matching tag, tag isolation) are identical across
/// backends. Collectives are the [`Comm`] trait's rank-order defaults.
pub struct NativeComm {
    rank: usize,
    size: usize,
    /// The run's shared time origin (captured before any rank starts).
    start: Instant,
    /// `txs[dst]` sends into `dst`'s mailbox slot for this rank.
    txs: Vec<MailboxSender<NativeMsg>>,
    /// `rxs[src]` receives messages sent by `src`.
    rxs: Vec<MailboxReceiver<NativeMsg>>,
    /// Tag-matched receive buffering (shared semantics with the simulator
    /// — see [`TagBuffer`]).
    pending: TagBuffer<NativeMsg>,
    barrier: Arc<BarrierShared>,
}

impl NativeComm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        start: Instant,
        txs: Vec<MailboxSender<NativeMsg>>,
        rxs: Vec<MailboxReceiver<NativeMsg>>,
        barrier: Arc<BarrierShared>,
    ) -> Self {
        let pending = TagBuffer::new(size);
        NativeComm {
            rank,
            size,
            start,
            txs,
            rxs,
            pending,
            barrier,
        }
    }

    /// This rank's id in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Comm for NativeComm {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    /// No-op: on real threads the work itself takes the time. The hook
    /// exists so virtual-time backends can charge modelled cost.
    #[inline]
    fn compute(&mut self, _work: f64) {}

    /// Wall-clock seconds since the run started (shared origin across all
    /// ranks).
    #[inline]
    fn now_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        if self.txs[dst].send(NativeMsg { tag, payload }).is_err() {
            panic!("receiver rank terminated before message was delivered");
        }
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        self.pending
            .recv_matching(&mut self.rxs[src], self.rank, src, tag)
            .payload
    }

    fn barrier(&mut self) {
        // Zero-cost barrier: the shared protocol's clock fold collapses to
        // a no-op (see `BarrierShared`); only the synchronization and the
        // poison semantics remain.
        let _ = self.barrier.wait(VTime::ZERO);
    }

    // `isend`/`irecv`/`wait_recv` use the trait defaults: mailbox sends
    // are already buffered-and-immediate (the sender thread never blocks),
    // so posting a send *is* completing it, and `wait_recv` is the
    // ordinary tag-matched blocking receive. The overlap is real: between
    // the post and the wait this rank's OS thread runs application code
    // while peer threads push into its warm mailboxes.

    /// Genuine nonblocking probe: drains whatever has physically arrived
    /// from the peer into the tag buffer and reports whether the matching
    /// message is among it. Never blocks, never consumes.
    fn test_recv(&mut self, req: &RecvRequest) -> bool {
        self.pending
            .poll_matching(&mut self.rxs[req.src()], req.src(), req.tag())
    }

    /// Lossy send: a terminated receiver yields `false` instead of the
    /// panic [`Comm::send`] raises — the failure detector's heartbeats
    /// must survive a dead peer.
    fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        assert!(dst < self.size, "post to rank {dst} of {}", self.size);
        self.txs[dst].send(NativeMsg { tag, payload }).is_ok()
    }

    /// Genuine wall-clock bounded receive: waits up to `timeout_secs` for
    /// the matching message, returning `None` on timeout — and `None`
    /// immediately once the sender is provably gone (closed mailbox), so
    /// dead peers are detected at mailbox-teardown speed while wedged
    /// ones take the full timeout. Mismatched tags buffered while waiting
    /// are preserved in FIFO order.
    fn recv_deadline(&mut self, src: usize, tag: Tag, timeout_secs: f64) -> Option<Payload> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let deadline = Instant::now() + std::time::Duration::from_secs_f64(timeout_secs.max(0.0));
        self.pending
            .recv_matching_deadline(&mut self.rxs[src], src, tag, deadline)
            .ok()
            .map(|m| m.payload)
    }

    /// Wall-clock bounded barrier: `false` if the barrier does not
    /// release within `timeout_secs` (a participant is dead or wedged, or
    /// the barrier was poisoned), with this rank's arrival withdrawn.
    fn barrier_deadline(&mut self, timeout_secs: f64) -> bool {
        self.barrier
            .wait_deadline(
                VTime::ZERO,
                std::time::Duration::from_secs_f64(timeout_secs.max(0.0)),
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_barrier_synchronizes_two_threads() {
        let b = BarrierShared::new(2, 0.0);
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait(VTime::ZERO));
        b.wait(VTime::ZERO);
        h.join().expect("peer reached the barrier");
    }

    #[test]
    fn poisoned_barrier_wakes_waiter() {
        let b = BarrierShared::new(2, 0.0);
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b2.wait(VTime::ZERO))).is_err()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        b.poison();
        assert!(h.join().expect("waiter thread"), "waiter must panic out");
    }
}
