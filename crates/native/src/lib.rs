//! # stance-native — the real-hardware backend
//!
//! The simulator (`stance-sim`) answers "what would this run cost on the
//! paper's cluster?"; this crate answers "how fast does it actually go on
//! this machine?". [`NativeCluster::run`] executes the same SPMD closures
//! the simulator runs, on one **real OS thread per rank**, through the same
//! [`Comm`] trait — so every generic layer of the runtime (gather/scatter,
//! redistribution, the load balancer, the adaptive session) runs unmodified
//! on actual hardware.
//!
//! Differences from the simulator, by design:
//!
//! * **Time is the wall clock.** [`Comm::now_secs`] reads a monotonic
//!   `Instant` shared by the whole run; the compute-charging hook
//!   [`Comm::compute`] is a no-op, because on real threads the work itself
//!   takes the time. The load monitor therefore feeds on *measured*
//!   per-item times — the paper's adaptivity loop becomes
//!   measurement-driven instead of model-driven.
//! * **Nothing else differs.** The transport is the same warm mailbox
//!   (`stance_sim::mailbox`) the simulator uses — a mutex-protected
//!   `VecDeque` per (source, destination) pair whose capacity converges
//!   over the first iterations, after which steady-state sends and
//!   receives allocate nothing. Collectives use the [`Comm`] trait's
//!   default rank-order implementations, so reductions fold in exactly
//!   the simulator's order and numeric results are **bitwise identical**
//!   across backends (pinned by `tests/backend_equivalence.rs` at the
//!   workspace root).
//!
//! ## Example
//!
//! ```
//! use stance_native::NativeCluster;
//! use stance_sim::{Comm, Payload, Tag};
//!
//! let report = NativeCluster::new(4).run(|comm| {
//!     // Every rank contributes its id; everyone gets the rank-order sum.
//!     comm.allreduce_f64(Tag(1), comm.rank() as f64, |a, b| a + b)
//! });
//! assert_eq!(report.into_results(), vec![6.0; 4]);
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod comm;

pub use cluster::{NativeCluster, NativeRankReport, NativeRunReport};
pub use comm::NativeComm;
pub use stance_sim::{Comm, Payload, Tag};
