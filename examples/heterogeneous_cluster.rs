//! A *nonuniform* (static heterogeneous) cluster: five workstations whose
//! speeds differ up to 4×. Compares the naive equal decomposition against a
//! capability-weighted decomposition and reports the paper's §4 efficiency
//! metric for both.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use stance::prelude::*;

fn main() {
    let speeds = [1.0, 0.9, 0.5, 0.4, 0.25];
    let iterations = 100;
    let raw = stance::locality::meshgen::annulus_mesh(40, 96, 3);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Hilbert);
    let n = mesh.num_vertices();
    println!(
        "mesh: {} vertices, {} edges; speeds = {:?}\n",
        n,
        mesh.num_edges(),
        speeds
    );
    let init = |g: usize| (g % 17) as f64;

    // The §4 denominator: the time each machine would need alone.
    // (Sequential time on the reference machine, measured once.)
    let seq_ref = {
        let spec = ClusterSpec::uniform(1);
        let config = StanceConfig::default().without_load_balancing();
        let mesh = mesh.clone();
        Cluster::new(spec)
            .run(move |env| {
                let mut s = AdaptiveSession::setup(env, &mesh, RelaxationKernel, init, &config);
                s.run_adaptive(env, iterations);
            })
            .makespan()
    };
    let seq_times: Vec<f64> = speeds.iter().map(|s| seq_ref / s).collect();
    println!("sequential times per machine: {seq_times:.1?}");

    for weighted in [false, true] {
        let spec = ClusterSpec::heterogeneous(&speeds);
        let config = StanceConfig::default().without_load_balancing();
        let partition = if weighted {
            BlockPartition::from_weights(n, &speeds, Arrangement::identity(speeds.len()))
        } else {
            BlockPartition::uniform(n, speeds.len())
        };
        let mesh = mesh.clone();
        let report = Cluster::new(spec).run(move |env| {
            let mut s = AdaptiveSession::setup_with_partition(
                env,
                &mesh,
                partition.clone(),
                RelaxationKernel,
                init,
                &config,
            );
            s.run_adaptive(env, iterations);
        });
        let t = report.makespan();
        let e = stance::static_efficiency(t, &seq_times);
        println!(
            "{}: T = {:7.3}s, nonuniform efficiency E = {:.2}",
            if weighted {
                "capability-weighted blocks"
            } else {
                "equal blocks              "
            },
            t,
            e
        );
    }
    println!("\n(Weighted blocks make the fast machines do proportionally more work,");
    println!(" which is exactly what Phase A's 1-D partitioning makes cheap.)");
}
