//! A distributed conjugate-gradient solver on the simulated cluster —
//! a second application class on the same runtime: instead of the paper's
//! relaxation loop, each iteration is a Laplacian matvec (gather + local
//! sweep) plus two global dot products (allreduce).
//!
//! Solves `(L + I) x = b` where `L` is the mesh Laplacian and `b` is chosen
//! so the exact solution is `x*[i] = sin(0.01 i)`; reports convergence and
//! checks the result.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use stance::executor::{
    gather, laplacian_matvec_step, sequential_laplacian_matvec, ComputeCostModel, GhostedArray,
};
use stance::inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
use stance::prelude::*;

const SHIFT: f64 = 1.0;

fn main() {
    let raw = stance::locality::meshgen::triangulated_grid(40, 40, 0.4, 19);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Spectral);
    let n = mesh.num_vertices();
    println!("solving (L + I)x = b on a {} vertex mesh, 4 workstations", n);

    // Manufactured solution and right-hand side.
    let x_star: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut b = vec![0.0; n];
    sequential_laplacian_matvec(&mesh, &x_star, SHIFT, &mut b);

    let part = BlockPartition::uniform(n, 4);
    let spec = ClusterSpec::uniform(4);
    let cost = ComputeCostModel::sun4();

    let report = Cluster::new(spec).run(|env| {
        let rank = env.rank();
        let iv = part.interval_of(rank);
        let adj = LocalAdjacency::extract(&mesh, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let tadj = sched.translate_adjacency(&adj);
        let ghosts = sched.num_ghosts() as usize;
        let owned = iv.len();
        let matvec_work = cost.sweep_work(owned, tadj.num_refs());

        // Distributed CG state (local blocks).
        let mut x = vec![0.0f64; owned];
        let mut r: Vec<f64> = iv.iter().map(|g| b[g]).collect(); // r = b - A·0
        let mut p = r.clone();
        let mut ap = vec![0.0f64; owned];
        let mut p_ghosted = GhostedArray::zeros(owned, ghosts);

        let dot = |env: &mut Env, a: &[f64], c: &[f64]| -> f64 {
            let local: f64 = a.iter().zip(c).map(|(x, y)| x * y).sum();
            env.allreduce_f64(Tag(1), local, |u, v| u + v)
        };

        let mut rho = dot(env, &r, &r);
        let rho0 = rho;
        let mut iterations = 0;
        for k in 0..200 {
            // Ap = (L + I) p   (gather ghosts of p, then local sweep).
            p_ghosted.set_local(&p);
            gather(env, &sched, &mut p_ghosted, &cost);
            env.compute(matvec_work);
            laplacian_matvec_step(&tadj, &p_ghosted, SHIFT, &mut ap);

            let alpha = rho / dot(env, &p, &ap);
            for i in 0..owned {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rho_next = dot(env, &r, &r);
            iterations = k + 1;
            if env.rank() == 0 && (k % 10 == 0) {
                println!("  iter {k:>3}: relative residual {:.3e}", (rho_next / rho0).sqrt());
            }
            if rho_next <= rho0 * 1e-20 {
                rho = rho_next;
                break;
            }
            let beta = rho_next / rho;
            for i in 0..owned {
                p[i] = r[i] + beta * p[i];
            }
            rho = rho_next;
        }
        (x, iterations, (rho / rho0).sqrt(), env.now().as_secs())
    });

    let ranks = &report.ranks;
    let (_, iters, rel_res, _) = &ranks[0].result;
    println!(
        "\nconverged in {} iterations, relative residual {:.3e}, makespan {:.3}s",
        iters,
        rel_res,
        report.makespan()
    );

    // Verify against the manufactured solution.
    let mut solution = vec![0.0; n];
    for (rank, outcome) in report.ranks.iter().enumerate() {
        let iv = part.interval_of(rank);
        solution[iv.start..iv.end].copy_from_slice(&outcome.result.0);
    }
    let max_err = solution
        .iter()
        .zip(&x_star)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / x_star.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    println!("max relative error vs exact solution: {max_err:.3e}");
    assert!(max_err < 1e-8, "CG failed to converge to the solution");
    println!("verified.");
}
