//! A distributed preconditioned conjugate-gradient solver — a second
//! application class on the same runtime, running through the
//! **multi-field dataflow session**: the solver registers its vectors as
//! named fields (`x`, `r`, `u`, `Au`, `p`, `Ap`) and declares a two-stage
//! kernel graph, and the session supplies partitioning, fused ghost
//! exchange, and the paper's adaptive load balancing for *all* of them at
//! once.
//!
//! The iteration is the Chronopoulos–Gear form of Jacobi-preconditioned
//! CG, which folds the preconditioner solve and the matvec into one
//! session pass:
//!
//! ```text
//! stage "precond" (local):    u  = M⁻¹ r        M = diag(L + I)
//! stage "matvec"  (gathered): Au = (L + I) u
//! ```
//!
//! `precond` reads owned entries only, so the only ghost exchange per
//! iteration is `u`'s — one fused message per neighbor, between the two
//! stages. The host combines the pass's outputs with two dot products
//! (allreduce) and updates `p`, `Ap`, `x`, `r` through named
//! `set_local` writes. Every `check_interval` iterations the session runs
//! a load-balance check; when a competing job on workstation 0 makes a
//! remap profitable, **every registered field moves to the new
//! distribution automatically** — no positional aux-array bookkeeping —
//! and the iteration continues seamlessly.
//!
//! Solves `(L + I) x = b` where `L` is the mesh Laplacian and `b` is chosen
//! so the exact solution is `x*[i] = sin(0.01 i)`; reports convergence,
//! remaps, and checks the result.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use stance::balance::BalancerConfig;
use stance::executor::sequential_laplacian_matvec;
use stance::inspector::TranslatedAdjacency;
use stance::onedim::RedistCostModel;
use stance::prelude::*;

const SHIFT: f64 = 1.0;
const MAX_ITERS: usize = 200;

/// The Jacobi preconditioner as a stage kernel: `u[i] = r[i] / (deg(i) +
/// SHIFT)` — the inverse of `diag(L + I)`. Pointwise, so the stage reads
/// owned entries only (`stage_local`) and never needs a ghost exchange.
struct JacobiKernel;

impl Kernel<f64> for JacobiKernel {
    fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[f64], out: &mut [f64]) {
        for (l, o) in out.iter_mut().enumerate() {
            *o = combined[l] / (tadj.neighbors_of(l).len() as f64 + SHIFT);
        }
    }
}

fn main() {
    let raw = stance::locality::meshgen::triangulated_grid(40, 40, 0.4, 19);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Spectral);
    let n = mesh.num_vertices();
    println!("solving (L + I)x = b on a {n} vertex mesh, 4 workstations");
    println!("competing job on workstation 0 (availability 1/3) — load balancing on\n");

    // Manufactured solution and right-hand side.
    let x_star: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut b = vec![0.0; n];
    sequential_laplacian_matvec(&mesh, &x_star, SHIFT, &mut b);

    // An adaptive environment: rank 0 loses 2/3 of its capacity to a
    // competing job. The balancer is scaled to this 1.6k-vertex mesh (the
    // defaults assume the paper's 30k workload).
    let spec = ClusterSpec::uniform(4)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::competing_load(0.0, f64::INFINITY, 2));
    let config = StanceConfig {
        check_interval: 10,
        balancer: BalancerConfig {
            redist_model: RedistCostModel {
                per_message: 1.0e-4,
                per_element: 1.0e-7,
            },
            rebuild_cost_hint: 1.0e-4,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        },
        ..StanceConfig::default()
    };

    let mesh_ref = &mesh;
    let b_ref = &b;
    let report = Cluster::new(spec).run(move |env| {
        // The solver's whole state, registered by name; `x` first makes it
        // the checkpoint's primary field. One pass = precond then matvec,
        // with u's fused exchange between them.
        let graph = StageGraphBuilder::new()
            .field("x")
            .field("r")
            .field("u")
            .field("Au")
            .field("p")
            .field("Ap")
            .stage_local("precond", JacobiKernel, "r", "u")
            .stage("matvec", LaplacianKernel { shift: SHIFT }, "u", "Au")
            .build();
        let mut session = DataflowSession::setup(
            env,
            mesh_ref,
            graph,
            // x = 0, r = b - A·0 = b; the rest starts zero and is
            // overwritten before first use.
            |name, g| if name == "r" { b_ref[g] } else { 0.0 },
            &config,
        );

        let dot = |env: &mut Env, a: &[f64], c: &[f64]| -> f64 {
            let local: f64 = a.iter().zip(c).map(|(x, y)| x * y).sum();
            env.allreduce_f64(Tag(1), local, |u, v| u + v)
        };

        let rr0 = {
            let r = session.local("r").to_vec();
            dot(env, &r, &r)
        };

        // First pass: u0 = M⁻¹ r0, Au0 = A u0; then p0 = u0, Ap0 = Au0,
        // α0 = γ0/δ0.
        session.run_block(env, 1);
        let (mut gamma, mut alpha) = {
            let r = session.local("r").to_vec();
            let u = session.local("u").to_vec();
            let au = session.local("Au").to_vec();
            let gamma = dot(env, &r, &u);
            let delta = dot(env, &au, &u);
            session.set_local("p", &u);
            session.set_local("Ap", &au);
            (gamma, gamma / delta)
        };

        let mut rr = rr0;
        let mut iterations = 0;
        let mut remaps = 0;
        for k in 0..MAX_ITERS {
            // x += α p, r -= α Ap.
            {
                let mut x = session.local("x").to_vec();
                let mut r = session.local("r").to_vec();
                let p = session.local("p").to_vec();
                let ap = session.local("Ap").to_vec();
                for i in 0..x.len() {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * ap[i];
                }
                session.set_local("x", &x);
                session.set_local("r", &r);
                rr = dot(env, &r, &r);
            }
            iterations = k + 1;
            if env.rank() == 0 && k % 10 == 0 {
                println!("  iter {k:>3}: relative residual {:.3e}", (rr / rr0).sqrt());
            }
            if rr <= rr0 * 1e-20 {
                break;
            }

            // One pass: u = M⁻¹ r (local), fused exchange of u, Au = A u.
            session.run_block(env, 1);

            // The Chronopoulos–Gear recurrences: both dots come from the
            // same pass, then the search directions fold in.
            {
                let r = session.local("r").to_vec();
                let u = session.local("u").to_vec();
                let au = session.local("Au").to_vec();
                let gamma_new = dot(env, &r, &u);
                let delta = dot(env, &au, &u);
                let beta = gamma_new / gamma;
                alpha = gamma_new / (delta - beta * gamma_new / alpha);
                gamma = gamma_new;
                let mut p = session.local("p").to_vec();
                let mut ap = session.local("Ap").to_vec();
                for i in 0..p.len() {
                    p[i] = u[i] + beta * p[i];
                    ap[i] = au[i] + beta * ap[i];
                }
                session.set_local("p", &p);
                session.set_local("Ap", &ap);
            }

            // Periodic load-balance check (collective; the residual test
            // above is identical on every rank, so all ranks get here
            // together). On a remap every named field — x, r, u, Au, p,
            // Ap — moves with the session.
            if (k + 1) % config.check_interval == 0 {
                let (remapped, _, _) = session.check_and_rebalance(env, MAX_ITERS - (k + 1));
                if remapped {
                    remaps += 1;
                    if env.rank() == 0 {
                        println!(
                            "  iter {:>3}: REMAP -> block sizes {:?}",
                            k + 1,
                            session.partition().sizes()
                        );
                    }
                }
            }
        }
        let partition = session.partition().clone();
        (
            session.local("x").to_vec(),
            iterations,
            (rr / rr0).sqrt(),
            remaps,
            partition,
            env.now().as_secs(),
        )
    });

    let (_, iters, rel_res, remaps, _, _) = &report.ranks[0].result;
    println!(
        "\nconverged in {iters} iterations with {remaps} remap(s), relative residual {rel_res:.3e}, makespan {:.3}s",
        report.makespan()
    );
    assert!(
        *remaps >= 1,
        "the loaded workstation should have triggered at least one remap"
    );

    // Verify against the manufactured solution (reassemble along the FINAL
    // partition — the remap moved the blocks).
    let results: Vec<_> = report.into_results();
    let partition = results[0].4.clone();
    let blocks: Vec<Vec<f64>> = results.into_iter().map(|(x, ..)| x).collect();
    let solution = stance::reassemble(&partition, blocks);
    let max_err = solution
        .iter()
        .zip(&x_star)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / x_star.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    println!("max relative error vs exact solution: {max_err:.3e}");
    assert!(max_err < 1e-8, "CG failed to converge to the solution");
    println!("verified.");
}
