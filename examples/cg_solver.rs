//! A distributed conjugate-gradient solver — a second application class on
//! the same runtime, running *through* the session API: the solver supplies
//! [`LaplacianKernel`] as its `Kernel`, and the session supplies
//! partitioning, ghost gathers, and the paper's adaptive load balancing.
//!
//! Each CG iteration pushes the search direction `p` into the session,
//! applies the kernel once (`Ap = (L + I) p` — gather + local sweep), and
//! combines it with two global dot products (allreduce). Every
//! `check_interval` iterations the session runs a load-balance check; when
//! a competing job on workstation 0 makes a remap profitable, the session
//! moves its own values *and* the solver's `x`/`r`/`p` vectors to the new
//! distribution (`check_and_rebalance_with`), and the iteration continues
//! seamlessly.
//!
//! Solves `(L + I) x = b` where `L` is the mesh Laplacian and `b` is chosen
//! so the exact solution is `x*[i] = sin(0.01 i)`; reports convergence,
//! remaps, and checks the result.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use stance::balance::BalancerConfig;
use stance::executor::sequential_laplacian_matvec;
use stance::onedim::RedistCostModel;
use stance::prelude::*;

const SHIFT: f64 = 1.0;
const MAX_ITERS: usize = 200;

fn main() {
    let raw = stance::locality::meshgen::triangulated_grid(40, 40, 0.4, 19);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Spectral);
    let n = mesh.num_vertices();
    println!("solving (L + I)x = b on a {n} vertex mesh, 4 workstations");
    println!("competing job on workstation 0 (availability 1/3) — load balancing on\n");

    // Manufactured solution and right-hand side.
    let x_star: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut b = vec![0.0; n];
    sequential_laplacian_matvec(&mesh, &x_star, SHIFT, &mut b);

    // An adaptive environment: rank 0 loses 2/3 of its capacity to a
    // competing job. The balancer is scaled to this 1.6k-vertex mesh (the
    // defaults assume the paper's 30k workload).
    let spec = ClusterSpec::uniform(4)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::competing_load(0.0, f64::INFINITY, 2));
    let config = StanceConfig {
        check_interval: 10,
        balancer: BalancerConfig {
            redist_model: RedistCostModel {
                per_message: 1.0e-4,
                per_element: 1.0e-7,
            },
            rebuild_cost_hint: 1.0e-4,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        },
        ..StanceConfig::default()
    };

    let mesh_ref = &mesh;
    let b_ref = &b;
    let report = Cluster::new(spec).run(move |env| {
        let mut session = AdaptiveSession::setup(
            env,
            mesh_ref,
            LaplacianKernel { shift: SHIFT },
            |_| 0.0f64,
            &config,
        );

        // Distributed CG state (local blocks over the session's partition).
        let iv = session.partition().interval_of(env.rank());
        let mut x = vec![0.0f64; iv.len()];
        let mut r: Vec<f64> = iv.iter().map(|g| b_ref[g]).collect(); // r = b - A·0
        let mut p = r.clone();

        let dot = |env: &mut Env, a: &[f64], c: &[f64]| -> f64 {
            let local: f64 = a.iter().zip(c).map(|(x, y)| x * y).sum();
            env.allreduce_f64(Tag(1), local, |u, v| u + v)
        };

        let mut rho = dot(env, &r, &r);
        let rho0 = rho;
        let mut iterations = 0;
        let mut remaps = 0;
        for k in 0..MAX_ITERS {
            // Ap = (L + I) p: the session gathers p's ghosts and sweeps.
            session.set_local_values(&p);
            let ap = session.apply_kernel(env).to_vec();

            let alpha = rho / dot(env, &p, &ap);
            for i in 0..x.len() {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rho_next = dot(env, &r, &r);
            iterations = k + 1;
            if env.rank() == 0 && k % 10 == 0 {
                println!(
                    "  iter {k:>3}: relative residual {:.3e}",
                    (rho_next / rho0).sqrt()
                );
            }
            if rho_next <= rho0 * 1e-20 {
                rho = rho_next;
                break;
            }
            let beta = rho_next / rho;
            for i in 0..p.len() {
                p[i] = r[i] + beta * p[i];
            }
            rho = rho_next;

            // Periodic load-balance check (collective; the residual test
            // above is identical on every rank, so all ranks get here
            // together). On a remap the session moves x, r and p with it.
            if (k + 1) % config.check_interval == 0 {
                let (remapped, _, _) = session.check_and_rebalance_with(
                    env,
                    MAX_ITERS - (k + 1),
                    &mut [&mut x, &mut r, &mut p],
                );
                if remapped {
                    remaps += 1;
                    if env.rank() == 0 {
                        println!(
                            "  iter {:>3}: REMAP -> block sizes {:?}",
                            k + 1,
                            session.partition().sizes()
                        );
                    }
                }
            }
        }
        let partition = session.partition().clone();
        (
            x,
            iterations,
            (rho / rho0).sqrt(),
            remaps,
            partition,
            env.now().as_secs(),
        )
    });

    let (_, iters, rel_res, remaps, _, _) = &report.ranks[0].result;
    println!(
        "\nconverged in {iters} iterations with {remaps} remap(s), relative residual {rel_res:.3e}, makespan {:.3}s",
        report.makespan()
    );
    assert!(
        *remaps >= 1,
        "the loaded workstation should have triggered at least one remap"
    );

    // Verify against the manufactured solution (reassemble along the FINAL
    // partition — the remap moved the blocks).
    let results: Vec<_> = report.into_results();
    let partition = results[0].4.clone();
    let blocks: Vec<Vec<f64>> = results.into_iter().map(|(x, ..)| x).collect();
    let solution = stance::reassemble(&partition, blocks);
    let max_err = solution
        .iter()
        .zip(&x_star)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / x_star.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    println!("max relative error vs exact solution: {max_err:.3e}");
    assert!(max_err < 1e-8, "CG failed to converge to the solution");
    println!("verified.");
}
