//! Phase A playground: compares every one-dimensional indexing method on
//! two different mesh families and shows what the ordering quality means
//! for actual communication volume at several processor counts.
//!
//! ```text
//! cargo run --release --example partition_playground
//! ```

use stance::locality::{compute_ordering, meshgen, metrics, Graph, OrderingMethod};
use stance::onedim::BlockPartition;

fn report(name: &str, mesh: &Graph) {
    println!(
        "--- {name}: {} vertices, {} edges ---",
        mesh.num_vertices(),
        mesh.num_edges()
    );
    println!(
        "{:<10} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "method", "avg span", "bandwidth", "cut@3", "cut@6", "vol@6"
    );
    for method in OrderingMethod::ALL {
        let ordering = compute_ordering(mesh, method);
        let span = metrics::average_edge_span(mesh, &ordering);
        let bw = metrics::bandwidth(mesh, &ordering);
        let cut3 = metrics::edge_cut(
            mesh,
            &ordering,
            &BlockPartition::uniform(mesh.num_vertices(), 3),
        );
        let part6 = BlockPartition::uniform(mesh.num_vertices(), 6);
        let cut6 = metrics::edge_cut(mesh, &ordering, &part6);
        let vol6: usize = metrics::comm_volume(mesh, &ordering, &part6).iter().sum();
        println!(
            "{:<10} {:>12.2} {:>10} {:>8} {:>8} {:>8}",
            method.name(),
            span,
            bw,
            cut3,
            cut6,
            vol6
        );
    }
    println!();
}

fn main() {
    println!("Ordering quality across mesh families.\n");
    println!("avg span  = mean |T(u)-T(v)| over edges (1-D locality)");
    println!("cut@p     = edges crossing block boundaries at p equal blocks");
    println!("vol@p     = distinct off-block vertices gathered per iteration\n");

    let grid = meshgen::triangulated_grid(48, 48, 0.5, 21);
    report("jittered triangulated grid", &grid);

    let annulus = meshgen::annulus_mesh(24, 96, 22);
    report("annulus (airfoil-like)", &annulus);

    let rgg = meshgen::random_geometric(2000, 0.035, 23);
    report("random geometric graph", &rgg);

    println!(
        "Reading: the spectral ordering (the paper's choice) usually minimizes cut\n\
         and volume; Hilbert comes close at a fraction of the indexing cost; the\n\
         natural order is the do-nothing baseline."
    );
}
