//! Quickstart: parallelize an irregular mesh relaxation on a simulated
//! 4-workstation cluster, end to end through the four STANCE phases.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stance::executor::sequential_relaxation;
use stance::prelude::*;
use stance::reassemble;

// The application's two inputs: its per-vertex element (here plain `f64`)
// and its kernel (here the paper's Fig. 8 relaxation, shipped in-tree).
// Swap `RelaxationKernel` for your own `impl Kernel<E>` to run a different
// workload on the same runtime — see the crate docs and `cg_solver.rs`.

fn main() {
    // ------------------------------------------------------------------
    // Phase A: build an unstructured mesh and renumber it along a
    // locality-preserving one-dimensional order.
    // ------------------------------------------------------------------
    let raw = stance::locality::meshgen::triangulated_grid(40, 30, 0.5, 7);
    let (mesh, _ordering) = stance::prepare_mesh(&raw, OrderingMethod::Spectral);
    println!(
        "mesh: {} vertices, {} edges (reordered by recursive spectral bisection)",
        mesh.num_vertices(),
        mesh.num_edges()
    );

    // ------------------------------------------------------------------
    // Describe the computational environment: four equal workstations on
    // 10 Mbit/s Ethernet.
    // ------------------------------------------------------------------
    let spec = ClusterSpec::uniform(4);
    let config = StanceConfig::default();
    let iterations = 100;
    let init = |g: usize| (g as f64 * 0.01).sin();

    // ------------------------------------------------------------------
    // Phases B–D happen inside the SPMD closure: the session builds the
    // communication schedule (inspector), runs gather + sweep iterations
    // (executor), and checks load balance along the way.
    // ------------------------------------------------------------------
    let mesh_ref = &mesh;
    let report = Cluster::new(spec).run(move |env| {
        let mut session = AdaptiveSession::setup(env, mesh_ref, RelaxationKernel, init, &config);
        let run = session.run_adaptive(env, iterations);
        (
            run,
            session.local_values().to_vec(),
            session.partition().clone(),
        )
    });

    println!("\nper-rank outcome:");
    for (rank, r) in report.ranks.iter().enumerate() {
        let (run, _, _) = &r.result;
        println!(
            "  rank {rank}: clock {:7.3}s  compute {:6.3}s  wait {:6.3}s  msgs {}",
            r.clock.as_secs(),
            r.stats.compute_time,
            r.stats.wait_time,
            r.stats.messages_sent,
        );
        assert_eq!(run.iterations, iterations);
    }
    println!("makespan: {:.3} simulated seconds", report.makespan());

    // ------------------------------------------------------------------
    // Verify against the sequential reference: the parallel run is
    // bitwise identical.
    // ------------------------------------------------------------------
    let results: Vec<_> = report.into_results();
    let partition = results[0].2.clone();
    let blocks = results.into_iter().map(|(_, v, _)| v).collect();
    let parallel = reassemble(&partition, blocks);

    let mut reference: Vec<f64> = (0..mesh.num_vertices()).map(init).collect();
    sequential_relaxation(&mesh, &mut reference, iterations);
    assert_eq!(parallel, reference, "parallel must equal sequential");
    println!("verified: parallel result is bitwise identical to the sequential reference");
}
