//! An *adaptive* environment: a competing job arrives on workstation 0
//! partway through the run and departs later. The load balancer detects the
//! change at its periodic checks, remaps twice (shrinking then re-growing
//! rank 0's block), and the timeline of decisions is printed.
//!
//! ```text
//! cargo run --release --example adaptive_rebalance
//! ```

use stance::balance::BalancerConfig;
use stance::onedim::RedistCostModel;
use stance::prelude::*;

fn main() {
    let raw = stance::locality::meshgen::triangulated_grid(60, 50, 0.5, 11);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Rcb);
    println!(
        "mesh: {} vertices, {} edges on 3 workstations",
        mesh.num_vertices(),
        mesh.num_edges()
    );

    // A competing job occupies workstation 0 between t = 1 s and t = 2.5 s
    // (two competitors: availability drops to 1/3).
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::ethernet_10mbit())
        .with_load(0, LoadTimeline::competing_load(1.0, 2.5, 2));
    println!("competing load on rank 0 between t=1s and t=2.5s (availability 1/3)\n");

    let config = StanceConfig {
        check_interval: 10,
        balancer: BalancerConfig {
            redist_model: RedistCostModel::ethernet_f64(),
            rebuild_cost_hint: 0.02,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        },
        ..StanceConfig::default()
    };
    let total_iters = 200;

    let mesh_ref = &mesh;
    let report = Cluster::new(spec).run(move |env| {
        let mut session = AdaptiveSession::setup(
            env,
            mesh_ref,
            RelaxationKernel,
            |g| g as f64 * 1e-3,
            &config,
        );
        let mut timeline = Vec::new();
        let mut done = 0;
        while done < total_iters {
            session.run_block(env, config.check_interval);
            done += config.check_interval;
            if done >= total_iters {
                break;
            }
            let sizes_before = session.partition().sizes();
            let (remapped, check, rebalance) = session.check_and_rebalance(env, total_iters - done);
            if env.rank() == 0 {
                timeline.push((
                    done,
                    env.now().as_secs(),
                    remapped,
                    sizes_before,
                    session.partition().sizes(),
                    check,
                    rebalance,
                ));
            }
        }
        (env.now().as_secs(), timeline)
    });

    let (finish, timeline) = &report.ranks[0].result;
    println!("decision timeline (rank 0's view):");
    for (iter, t, remapped, before, after, check, rebalance) in timeline {
        if *remapped {
            println!(
                "  iter {iter:>3} @ t={t:7.3}s  REMAP {before:?} -> {after:?}  (check {check:.4}s, move+rebuild {rebalance:.4}s)"
            );
        } else {
            println!("  iter {iter:>3} @ t={t:7.3}s  keep  {after:?}  (check {check:.4}s)");
        }
    }
    println!(
        "\nfinished at t = {finish:.3}s (makespan {:.3}s)",
        report.makespan()
    );
    println!(
        "expected pattern: remaps soon after t=1s (rank 0 shrinks), another after\n\
         t=2.5s (rank 0 grows back), keeps everywhere else."
    );
}
