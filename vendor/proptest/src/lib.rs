//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in environments without access to a crates.io
//! mirror, so the subset of proptest's surface its property tests use is
//! vendored here:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`Strategy`] implementations for numeric ranges, tuples, and
//!   [`collection::vec`],
//! * the [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//!   macros.
//!
//! Unlike the real proptest, generation is seeded deterministically from the
//! test name (reproducible in CI) and failing cases are **not** shrunk —
//! the panic message reports the case number instead.

use std::fmt;
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error produced by a failing `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator driving value production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier, so every test draws an
    /// independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector of values drawn from `element`, with length drawn from
    /// `len`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed at case {case}: {e}");
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `if cond {} else` rather than `if !cond` so clippy does not flag
        // negated comparisons on partially ordered operands at expansion
        // sites like `prop_assert!(x < 1.0)`.
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: {:?} == {:?}", format!($($fmt)*), l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..10, 2..6), w in crate::collection::vec(0u64..4, 3usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn tuples_work(pair in (0u32..8, 0.0f64..1.0)) {
            prop_assert!(pair.0 < 8);
            prop_assert!(pair.1 < 1.0);
            prop_assert_ne!(pair.1, 2.0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
