//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds in environments without access to a crates.io
//! mirror, so the subset of criterion's surface the benches use is vendored
//! here: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs `sample_size`
//! samples after one calibration pass and reports the per-iteration median,
//! minimum, and mean to stdout. Iteration counts per sample are chosen so a
//! sample takes roughly [`TARGET_SAMPLE`]. Set `CRITERION_FAST=1` (as the
//! CI smoke job does) to run every benchmark once, only checking that it
//! executes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.id
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration, enabling rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        if fast_mode() {
            b.iters_per_sample = 1;
            f(&mut b);
            println!("bench {}/{}: ran (CRITERION_FAST)", self.name, id.id);
            return self;
        }
        // Calibration pass: find an iteration count giving ~TARGET_SAMPLE.
        b.iters_per_sample = 1;
        f(&mut b);
        let per_iter = b.last_sample.max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters_per_sample = iters;
            f(&mut b);
            samples.push(b.last_sample / iters as u32);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1.0e6)
            }
            Throughput::Bytes(n) => format!(
                "  ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            ),
        });
        println!(
            "bench {}/{}: median {:?}  min {:?}  mean {:?}  ({} samples × {} iters){}",
            self.name,
            id.id,
            median,
            min,
            mean,
            self.sample_size,
            iters,
            rate.unwrap_or_default()
        );
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn fast_mode() -> bool {
    std::env::var_os("CRITERION_FAST").is_some_and(|v| v == "1")
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_per_sample: u64,
    last_sample: Duration,
}

impl Bencher {
    /// Times `iters_per_sample` calls of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.last_sample = start.elapsed();
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark function in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        std::env::set_var("CRITERION_FAST", "1");
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("noop", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            g.bench_with_input(BenchmarkId::new("with", 4), &4u32, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert!(calls >= 1);
    }
}
