//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds in environments without access to a crates.io
//! mirror, so the handful of `rand` APIs the mesh generators and bench
//! harness use are vendored here: [`rngs::StdRng`], [`SeedableRng`],
//! [`RngExt::random`] for `f64`/`u64`/`u32`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — deterministic, seedable, and of more than
//! sufficient quality for workload generation (nothing here is
//! cryptographic). It intentionally does **not** reproduce the stream of the
//! real `StdRng`; all in-tree consumers only rely on determinism per seed,
//! not on a particular stream.

/// Types that can be constructed from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of uniformly distributed values (the subset of `rand::Rng` this
/// workspace uses).
pub trait RngExt {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value: `f64` in `[0, 1)`, or a full-range
    /// integer.
    fn random<T: Uniform>(&mut self) -> T {
        T::from_rng(self)
    }
}

/// Value types [`RngExt::random`] can produce.
pub trait Uniform {
    /// Draws one value from the generator.
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for u64 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// SplitMix64: a small, fast, well-mixed 64-bit generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngExt;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of uniform [0,1) samples should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left order intact");
    }
}
