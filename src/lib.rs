//! Integration surface of the STANCE reproduction workspace.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! (Cargo attaches those to a package, not a workspace). The library itself
//! re-exports the public API; depend on [`stance`] directly in real use.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use stance;

/// Reassembles per-rank local blocks into a single global vector, given the
/// final partition. Several examples and tests need this to compare a
/// distributed result against the sequential reference.
pub fn reassemble(partition: &stance::onedim::BlockPartition, blocks: Vec<Vec<f64>>) -> Vec<f64> {
    assert_eq!(
        blocks.len(),
        partition.num_procs(),
        "one block per processor"
    );
    let mut out = vec![0.0; partition.n()];
    for (rank, block) in blocks.into_iter().enumerate() {
        let iv = partition.interval_of(rank);
        assert_eq!(block.len(), iv.len(), "rank {rank} block size mismatch");
        out[iv.start..iv.end].copy_from_slice(&block);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance::onedim::BlockPartition;

    #[test]
    fn reassemble_orders_blocks() {
        let part = BlockPartition::from_sizes(&[2, 3]);
        let out = reassemble(&part, vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]]);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn reassemble_checks_sizes() {
        let part = BlockPartition::from_sizes(&[2, 2]);
        let _ = reassemble(&part, vec![vec![1.0], vec![2.0, 3.0]]);
    }
}
