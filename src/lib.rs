//! Integration surface of the STANCE reproduction workspace.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! (Cargo attaches those to a package, not a workspace). The library itself
//! re-exports the public API; depend on [`stance`] directly in real use.
//!
//! See `README.md` for the project overview and migration notes for the
//! trait-based application API.

pub use stance;

/// Re-export of [`stance::reassemble`], kept so older callers of the shim
/// crate keep working; new code should call it through `stance` directly.
pub use stance::reassemble;

pub mod conformance;
pub mod scenarios;
