//! The backend-conformance bodies, written once against the [`Comm`]
//! trait and instantiated by `tests/comm_conformance.rs` against **all
//! three** backends: the virtual-time simulator, the native thread pool,
//! and the process-per-rank TCP cluster (where each body becomes a named
//! worker scenario). A backend that buffers, orders, or folds differently
//! fails the same body everywhere, which is the point of keeping exactly
//! one copy here.
//!
//! Covered contract points: per-(source, tag) FIFO ordering, tag
//! isolation (mismatched tags are buffered, not dropped or misdelivered),
//! repeated barriers, rank-order `allreduce_f64` folding, personalized
//! `exchange`, and the broadcast/gather/allgather collectives — plus the
//! nonblocking request API: a receive posted before the matching send
//! exists, FIFO order across interleaved blocking and nonblocking sends
//! on one (source, destination, tag) stream, tag isolation across
//! outstanding requests, and `wait`/`test` long after the peer completed.

use stance::prelude::*;
use stance_verify::{analyze_traces, RankTrace};

/// Analyzer gate shared by every launcher: a conformance body must not
/// only produce the right data, its recorded traffic must satisfy the
/// protocol checker — matched sends, no leaked requests, agreeing
/// barrier counts.
pub fn expect_protocol_clean(backend: &str, traces: &[RankTrace]) {
    let diags = analyze_traces(traces);
    assert!(
        diags.is_empty(),
        "{backend} conformance traffic violated the protocol: {diags:?}"
    );
}

/// Messages between one (source, destination) pair with one tag are
/// received in send order, from every source at once. Run with 3 ranks.
pub fn send_recv_ordering<C: Comm>(c: &mut C) {
    const MSGS: u32 = 10;
    let me = c.rank() as u32;
    for dst in 0..c.size() {
        if dst != c.rank() {
            for seq in 0..MSGS {
                c.send(dst, Tag(7), Payload::from_u32(vec![me, seq]));
            }
        }
    }
    for src in 0..c.size() {
        if src != c.rank() {
            for seq in 0..MSGS {
                let words = c.recv(src, Tag(7)).into_u32();
                assert_eq!(words, vec![src as u32, seq], "out-of-order from {src}");
            }
        }
    }
}

/// A receive for tag B must skip (and preserve) earlier tag-A traffic;
/// per-tag FIFO order survives the buffering. Run with 2 ranks.
pub fn tag_isolation<C: Comm>(c: &mut C) {
    if c.rank() == 0 {
        // Interleave two tag streams.
        c.send(1, Tag(1), Payload::from_u32(vec![10]));
        c.send(1, Tag(2), Payload::from_u32(vec![20]));
        c.send(1, Tag(1), Payload::from_u32(vec![11]));
        c.send(1, Tag(2), Payload::from_u32(vec![21]));
    } else if c.rank() == 1 {
        // Drain tag 2 first, then tag 1: both streams stay FIFO.
        assert_eq!(c.recv(0, Tag(2)).into_u32(), vec![20]);
        assert_eq!(c.recv(0, Tag(2)).into_u32(), vec![21]);
        assert_eq!(c.recv(0, Tag(1)).into_u32(), vec![10]);
        assert_eq!(c.recv(0, Tag(1)).into_u32(), vec![11]);
    }
}

/// Repeated barriers separate communication rounds: a ring exchange
/// per round, with the round number as the tag, never cross-talks.
/// Run with 4 ranks.
pub fn barrier_rounds<C: Comm>(c: &mut C) {
    let p = c.size();
    for round in 0..20u32 {
        let next = (c.rank() + 1) % p;
        let prev = (c.rank() + p - 1) % p;
        c.send(next, Tag(round), Payload::from_u32(vec![round]));
        let got = c.recv(prev, Tag(round)).into_u32();
        assert_eq!(got, vec![round]);
        c.barrier();
    }
}

/// `allreduce_f64` folds in rank order on every backend, so even
/// non-commutative floating-point effects are reproducible. Run with 4
/// ranks.
pub fn allreduce_ops<C: Comm>(c: &mut C) {
    let p = c.size();
    let sum = c.allreduce_f64(Tag(1), (c.rank() + 1) as f64, |a, b| a + b);
    assert_eq!(sum, (p * (p + 1)) as f64 / 2.0);
    let max = c.allreduce_f64(Tag(2), c.rank() as f64, f64::max);
    assert_eq!(max, (p - 1) as f64);
    // A deliberately order-sensitive fold: rank-order means every rank
    // and every backend computes exactly this sequential reference.
    let folded = c.allreduce_f64(Tag(3), 1.0 + c.rank() as f64 * 0.1, |a, b| a / 3.0 + b);
    let expected = (0..p)
        .map(|r| 1.0 + r as f64 * 0.1)
        .reduce(|a, b| a / 3.0 + b)
        .unwrap();
    assert_eq!(folded.to_bits(), expected.to_bits());
}

/// Personalized all-to-all: each rank sends a distinct payload to every
/// other rank and receives one from each, in the order it asked for.
/// Run with 5 ranks.
pub fn exchange_ring<C: Comm>(c: &mut C) {
    let p = c.size();
    let me = c.rank();
    let sends: Vec<(usize, Payload)> = (0..p)
        .filter(|&dst| dst != me)
        .map(|dst| (dst, Payload::from_u32(vec![me as u32, dst as u32])))
        .collect();
    let recv_from: Vec<usize> = (0..p).filter(|&src| src != me).rev().collect();
    let got = c.exchange(sends, &recv_from, Tag(4));
    assert_eq!(got.len(), p - 1);
    for ((src, payload), &expected_src) in got.into_iter().zip(&recv_from) {
        assert_eq!(src, expected_src, "exchange must follow recv_from order");
        assert_eq!(payload.into_u32(), vec![src as u32, me as u32]);
    }
}

/// A receive posted before the matching send even exists must
/// complete once the send lands: the barrier guarantees rank 0 has
/// not sent when rank 1 posts. Run with 3 ranks.
pub fn irecv_posted_before_send<C: Comm>(c: &mut C) {
    if c.rank() == 1 {
        let req = c.irecv(0, Tag(3));
        c.barrier();
        assert_eq!(c.wait_recv(req).into_u32(), vec![99]);
    } else {
        c.barrier();
        if c.rank() == 0 {
            let req = c.isend(1, Tag(3), Payload::from_u32(vec![99]));
            c.wait_send(req);
        }
    }
}

/// Blocking and nonblocking sends interleaved on one (source,
/// destination, tag) stream form a single FIFO stream, however the
/// receiver mixes blocking receives and posted requests. Run with 2
/// ranks.
pub fn mixed_blocking_nonblocking_fifo<C: Comm>(c: &mut C) {
    const MSGS: u32 = 12;
    if c.rank() == 0 {
        let mut pending = Vec::new();
        for seq in 0..MSGS {
            if seq % 2 == 0 {
                c.send(1, Tag(5), Payload::from_u32(vec![seq]));
            } else {
                pending.push(c.isend(1, Tag(5), Payload::from_u32(vec![seq])));
            }
        }
        for req in pending {
            c.wait_send(req);
        }
    } else if c.rank() == 1 {
        for seq in 0..MSGS {
            let got = if seq % 3 == 0 {
                c.recv(0, Tag(5))
            } else {
                let req = c.irecv(0, Tag(5));
                c.wait_recv(req)
            };
            assert_eq!(got.into_u32(), vec![seq], "stream broke FIFO at {seq}");
        }
    }
}

/// Outstanding requests on different tags are isolated: waits may
/// complete in any order relative to arrival order, each draining its
/// own tag's FIFO stream. Run with 2 ranks.
pub fn outstanding_request_tag_isolation<C: Comm>(c: &mut C) {
    if c.rank() == 0 {
        // Tag-2 traffic brackets the tag-1 message.
        c.send(1, Tag(2), Payload::from_u32(vec![22]));
        let req = c.isend(1, Tag(1), Payload::from_u32(vec![11]));
        c.send(1, Tag(2), Payload::from_u32(vec![23]));
        c.wait_send(req);
    } else if c.rank() == 1 {
        let a = c.irecv(0, Tag(1));
        let b1 = c.irecv(0, Tag(2));
        let b2 = c.irecv(0, Tag(2));
        // Wait in an order unrelated to the send order.
        assert_eq!(c.wait_recv(a).into_u32(), vec![11]);
        assert_eq!(c.wait_recv(b1).into_u32(), vec![22]);
        assert_eq!(c.wait_recv(b2).into_u32(), vec![23]);
    }
}

/// `wait` (and `test`) long after the peer finished sending: the
/// message is buffered, the probe reports ready, and the wait returns
/// without a peer in sight. Run with 2 ranks.
pub fn wait_after_peer_completion<C: Comm>(c: &mut C) {
    if c.rank() == 0 {
        let req = c.isend(1, Tag(8), Payload::from_u64(vec![77]));
        c.wait_send(req);
        c.barrier();
        c.barrier();
    } else {
        let req = c.irecv(0, Tag(8));
        // Two barriers: the sender completed its send strictly before
        // the first, and has nothing left to do by the second.
        c.barrier();
        c.barrier();
        assert!(
            c.test_recv(&req),
            "probe must report ready after the peer completed"
        );
        assert_eq!(c.wait_recv(req).into_u64(), vec![77]);
    }
}

/// `post` delivers like `send` (and reports delivery); `recv_deadline`
/// returns the message when one is in flight and `None` once the
/// deadline lapses with nothing to receive. Run with 2 ranks.
pub fn post_and_recv_deadline<C: Comm>(c: &mut C) {
    if c.rank() == 0 {
        assert!(
            c.post(1, Tag(40), Payload::from_u32(vec![99])),
            "post to a live rank must report delivery"
        );
    } else if c.rank() == 1 {
        let got = c
            .recv_deadline(0, Tag(40), 5.0)
            .expect("posted message must arrive within the deadline");
        assert_eq!(got.into_u32(), vec![99]);
        // Nothing else is coming on this tag: the deadline lapses.
        assert!(c.recv_deadline(0, Tag(40), 0.05).is_none());
    }
    c.barrier();
}

/// A timed-out `recv_deadline` consumes nothing: traffic sent later
/// on the same stream is received intact and in order. Run with 2
/// ranks.
pub fn deadline_timeout_preserves_stream<C: Comm>(c: &mut C) {
    if c.rank() == 1 {
        assert!(
            c.recv_deadline(0, Tag(41), 0.05).is_none(),
            "nothing was sent yet"
        );
    }
    c.barrier();
    if c.rank() == 0 {
        c.send(1, Tag(41), Payload::from_u32(vec![1]));
        c.send(1, Tag(41), Payload::from_u32(vec![2]));
    } else if c.rank() == 1 {
        assert_eq!(c.recv(0, Tag(41)).into_u32(), vec![1]);
        assert_eq!(
            c.recv_deadline(0, Tag(41), 5.0)
                .expect("second message is in flight")
                .into_u32(),
            vec![2]
        );
    }
    c.barrier();
}

/// With every rank arriving, the bounded barrier releases, reports
/// success, and composes with plain barriers afterwards. Run with 3
/// ranks.
pub fn barrier_deadline_releases<C: Comm>(c: &mut C) {
    assert!(c.barrier_deadline(5.0), "all ranks arrived");
    c.barrier();
    assert!(c.barrier_deadline(5.0));
}

/// Broadcast, rooted gather, and allgather deliver rank-ordered data.
/// Run with 4 ranks.
pub fn bcast_and_gather<C: Comm>(c: &mut C) {
    let payload = if c.rank() == 2 {
        Payload::from_f64(vec![3.25])
    } else {
        Payload::Empty
    };
    assert_eq!(c.bcast_from(2, Tag(9), payload).into_f64(), vec![3.25]);

    let mine = Payload::from_u32(vec![c.rank() as u32 * 10]);
    let gathered = c.gather_to(1, Tag(5), mine);
    if c.rank() == 1 {
        let ids: Vec<u32> = gathered
            .expect("root receives the gather")
            .into_iter()
            .flat_map(Payload::into_u32)
            .collect();
        let expected: Vec<u32> = (0..c.size() as u32).map(|r| r * 10).collect();
        assert_eq!(ids, expected);
    } else {
        assert!(gathered.is_none());
    }

    let all = c.allgather(Tag(6), Payload::from_u64(vec![c.rank() as u64]));
    let ids: Vec<u64> = all.into_iter().flat_map(Payload::into_u64).collect();
    let expected: Vec<u64> = (0..c.size() as u64).collect();
    assert_eq!(ids, expected);
}
