//! The rank-process binary behind every `TcpCluster` integration test:
//! one OS process per rank, dispatched to a named scenario from
//! [`stance_repro::scenarios::TCP_SCENARIOS`]. Not meant to be run by
//! hand — `TcpCluster` spawns it with the rendezvous environment set.

fn main() {
    stance_tcp::maybe_rank_main(stance_repro::scenarios::TCP_SCENARIOS);
    eprintln!(
        "tcp-rank-worker is a cluster worker; launch it through \
         stance_tcp::TcpCluster, which sets the rendezvous environment"
    );
    std::process::exit(2);
}
