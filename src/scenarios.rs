//! Shared end-to-end scenario bodies — fault-injection drivers and the
//! cross-backend equivalence workloads — written once, generic over
//! [`Comm`], plus the **TCP worker registry** that exposes each of them
//! (and every conformance body) as a named scenario a
//! [`TcpCluster`](stance_tcp::TcpCluster) rank process can run.
//!
//! The integration suites (`tests/fault_injection.rs`,
//! `tests/backend_equivalence.rs`, `tests/comm_conformance.rs`)
//! instantiate these against the simulator and the native thread pool
//! in-process, and against real OS processes through
//! `src/bin/tcp-rank-worker.rs` — three backends, one copy of every
//! workload, so a divergence is always the backend's fault and never a
//! drifted test.

use stance::executor::sequential_laplacian_matvec;
use stance::inspector::{build_schedule_symmetric, LocalAdjacency};
use stance::locality::meshgen;
use stance::prelude::*;
use stance_verify::{catch_fault, CheckedComm, FaultKind, FaultPlan, FaultyComm, RankTrace};

// ---------------------------------------------------------------------
// Fault-injection scenario (the kill / stall / wedge matrix).
// ---------------------------------------------------------------------

/// Iterations per epoch of the fault scenario.
pub const BLOCK: usize = 10;
/// Epochs in the fault scenario (each: probe → block → checkpoint).
pub const EPOCHS: usize = 4;
/// The epoch at whose membership probe the victim is killed.
pub const FAULT_EPOCH: usize = 2;
/// The rank the kill plan targets.
pub const VICTIM: usize = 2;

/// The mesh every fault-injection leg computes on.
pub fn fault_mesh() -> Graph {
    let raw = meshgen::triangulated_grid(12, 10, 0.4, 3);
    stance::prepare_mesh(&raw, OrderingMethod::Rcb).0
}

/// Initial value of global vertex `g` in the fault scenario.
pub fn fault_init(g: usize) -> f64 {
    (g as f64).cos() * 5.0
}

/// A detector fast enough for tests but patient enough (0.35 s total)
/// not to false-positive on a loaded CI host.
pub fn detector() -> DetectorConfig {
    DetectorConfig {
        timeout_secs: 0.05,
        retries: 2,
        backoff: 2.0,
    }
}

/// The fault scenario's session configuration: restore-and-shrink
/// recovery under the test detector.
pub fn fault_config() -> StanceConfig {
    StanceConfig::free()
        .with_recovery(RecoveryPolicy::RestoreAndShrink)
        .with_detector(detector())
}

/// One survivor's recovery outcome: its new (survivor-space) rank, final
/// local values, and the serialized checkpoint it restored from.
pub type SurvivorOutcome = (usize, Vec<f64>, Vec<u8>);

/// Runs the epoch loop fault-free and returns this rank's operation
/// count at the start of each epoch's membership probe — the aiming
/// table for a kill that must land exactly on a probe boundary (where
/// every mailbox is drained, so survivors recover from a clean slate).
pub fn epoch_op_marks<C: Comm>(env: &mut C, m: &Graph) -> Vec<u64> {
    let cfg = fault_config();
    let plan = FaultPlan::none();
    let mut faulty = FaultyComm::attach(env, &plan);
    let mut s = AdaptiveSession::setup(&mut faulty, m, RelaxationKernel, fault_init, &cfg);
    let _ = s.checkpoint(&mut faulty, &[]);
    let mut marks = Vec::new();
    for _ in 0..EPOCHS {
        marks.push(faulty.ops());
        assert_eq!(
            probe_and_decide(&mut faulty, &cfg),
            RecoveryAction::Continue
        );
        s.run_block(&mut faulty, BLOCK);
        let _ = s.checkpoint(&mut faulty, &[]);
    }
    marks
}

/// The faulted scenario on one rank. Survivors return
/// `Some((new_rank, final_values, checkpoint_blob))`; the victim
/// returns `None` after its injected death is caught — on the
/// in-process backends, that is; on the process backend the injected
/// kill is a real SIGKILL and the victim never returns at all.
pub fn faulted_run<C: Comm>(env: &mut C, m: &Graph, kill_at: u64) -> Option<SurvivorOutcome> {
    let cfg = fault_config();
    let plan = FaultPlan::kill(VICTIM, kill_at);
    let mut faulty = FaultyComm::attach(env, &plan);
    match catch_fault(|| drive(&mut faulty, m, &cfg)) {
        Ok(result) => result,
        Err(fault) => {
            assert_eq!(fault.rank, VICTIM, "only the planned victim may die");
            assert_eq!(fault.op, kill_at, "the kill must fire at the aimed op");
            assert!(matches!(fault.kind, FaultKind::Kill));
            None
        }
    }
}

/// The epoch loop with shrink-onto-survivors recovery. Must mirror
/// [`epoch_op_marks`] operation-for-operation up to the fault.
pub fn drive<C: Comm>(env: &mut C, m: &Graph, cfg: &StanceConfig) -> Option<SurvivorOutcome> {
    let mut s = AdaptiveSession::setup(env, m, RelaxationKernel, fault_init, cfg);
    let mut ckpt = s.checkpoint(env, &[]);
    for e in 0..EPOCHS {
        match probe_and_decide(env, cfg) {
            RecoveryAction::Continue => {
                s.run_block(env, BLOCK);
                ckpt = s.checkpoint(env, &[]);
            }
            RecoveryAction::Shrink { survivors } => {
                assert_eq!(e, FAULT_EPOCH, "the fault must surface at the aimed epoch");
                assert_eq!(survivors, vec![0, 1, 3], "exactly the victim is evicted");
                let mut sc = SurvivorComm::new(env, survivors);
                // The recovered run re-checks the whole SPMD contract:
                // audits after setup, every p2p event traced.
                let vcfg = cfg.clone().with_verification(true);
                let (mut r, aux) =
                    AdaptiveSession::restore(&mut sc, m, RelaxationKernel, &ckpt, &vcfg);
                assert!(aux.is_empty());
                for _ in e..EPOCHS {
                    r.run_block(&mut sc, BLOCK);
                }
                let diags = r.verify_protocol(&mut sc);
                assert!(
                    diags.is_empty(),
                    "recovered-run protocol diagnostics: {diags:?}"
                );
                return Some((sc.rank(), r.local_values().to_vec(), ckpt.to_bytes()));
            }
        }
    }
    unreachable!("the planned kill fires before the loop completes")
}

/// Checks a faulted run's outcome against (a) an uninterrupted 3-rank
/// continuation from the same checkpoint on the same backend and (b) the
/// sequential reference; `clean` runs that continuation.
pub fn check_recovery(
    m: &Graph,
    results: Vec<Option<SurvivorOutcome>>,
    clean: impl FnOnce(SessionCheckpoint<f64>) -> Vec<(Vec<f64>, BlockPartition)>,
) {
    assert!(results[VICTIM].is_none(), "the victim must die");
    let survivors: Vec<_> = results.into_iter().flatten().collect();
    assert_eq!(survivors.len(), 3, "three survivors must recover");
    assert!(
        survivors.windows(2).all(|w| w[0].2 == w[1].2),
        "the replicated checkpoint must be identical on every survivor"
    );
    let ckpt = SessionCheckpoint::<f64>::from_bytes(&survivors[0].2);
    assert_eq!(ckpt.num_procs(), 4, "the checkpoint predates the loss");

    let clean_results = clean(ckpt);
    for (new_rank, values, _) in &survivors {
        assert_eq!(
            values, &clean_results[*new_rank].0,
            "survivor {new_rank} diverged from the clean 3-rank continuation"
        );
    }
    let n = m.num_vertices();
    let mut expected: Vec<f64> = (0..n).map(fault_init).collect();
    stance::executor::sequential_relaxation(m, &mut expected, EPOCHS * BLOCK);
    let partition = clean_results[0].1.clone();
    let blocks = clean_results.into_iter().map(|(v, _)| v).collect();
    assert_eq!(
        reassemble(&partition, blocks),
        expected,
        "recovered computation diverged from the sequential reference"
    );
}

/// The uninterrupted 3-rank continuation from a checkpoint: the clean
/// half of [`check_recovery`], written once for every backend's `clean`
/// closure (and for the TCP `fault_continue` worker scenario).
pub fn continue_from_checkpoint<C: Comm>(
    env: &mut C,
    m: &Graph,
    ckpt: &SessionCheckpoint<f64>,
) -> (Vec<f64>, BlockPartition) {
    let cfg = fault_config();
    let (mut s, _) = AdaptiveSession::restore(env, m, RelaxationKernel, ckpt, &cfg);
    for _ in FAULT_EPOCH..EPOCHS {
        s.run_block(env, BLOCK);
    }
    (s.local_values().to_vec(), s.partition().clone())
}

// ---------------------------------------------------------------------
// Equivalence workloads (relaxation + conjugate gradient).
// ---------------------------------------------------------------------

/// The mesh both equivalence workloads compute on.
pub fn equiv_mesh() -> Graph {
    let raw = meshgen::triangulated_grid(14, 11, 0.4, 5);
    stance::prepare_mesh(&raw, OrderingMethod::Rcb).0
}

/// Initial value of global vertex `g` in the equivalence workloads.
pub fn equiv_init(g: usize) -> f64 {
    (g as f64 * 0.01).sin() * 5.0
}

/// One rank's share of the quickstart relaxation, generic over the
/// backend. Load balancing is disabled so every backend runs the
/// identical static schedule (remaps would not change the numbers —
/// relaxation is partition-invariant — but a wall-clock-driven remap
/// decision would make the *communication pattern* differ between runs
/// for no test value).
pub fn relaxation_body<C: Comm>(
    env: &mut C,
    mesh: &Graph,
    iters: usize,
    overlap: bool,
    team: usize,
) -> (Vec<f64>, BlockPartition) {
    let config = StanceConfig::free()
        .without_load_balancing()
        .with_overlap(overlap)
        .with_verification(true)
        .with_team(team);
    let mut session = AdaptiveSession::setup(env, mesh, RelaxationKernel, equiv_init, &config);
    session.run_adaptive(env, iters);
    let diags = session.verify_protocol(env);
    assert!(diags.is_empty(), "protocol diagnostics: {diags:?}");
    (session.local_values().to_vec(), session.partition().clone())
}

/// The manufactured CG problem: `(L + shift·I) x* = b` on
/// [`equiv_mesh`], with `x*` the reference every backend's solve is
/// checked against. Built identically in test launchers and TCP workers.
pub fn cg_problem() -> (Graph, Vec<f64>, Vec<f64>, f64) {
    let m = equiv_mesh();
    let n = m.num_vertices();
    let shift = 1.0;
    let x_star: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut b = vec![0.0; n];
    sequential_laplacian_matvec(&m, &x_star, shift, &mut b);
    (m, b, x_star, shift)
}

/// One rank's share of a fixed-iteration CG solve of `(L + shift·I)x =
/// b`, generic over the backend: `LoopRunner` does the gather + matvec,
/// `allreduce_f64` the dot products. Every branch depends only on
/// allreduced values, which are bitwise identical everywhere — so all
/// ranks and every backend walk the same path. The recorded trace rides
/// back with the result for cross-rank protocol analysis.
pub fn cg_body<C: Comm>(
    env: &mut C,
    mesh: &Graph,
    b: &[f64],
    shift: f64,
    max_iters: usize,
    overlap: bool,
    team: usize,
) -> (Vec<f64>, RankTrace) {
    // Hand-driven (no session), so the protocol checker is attached
    // directly.
    let mut trace = RankTrace::new(env.rank(), env.size());
    let mut checked = CheckedComm::attach(env, &mut trace);
    let env = &mut checked;
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, env.size());
    let rank = env.rank();
    let adj = LocalAdjacency::extract(mesh, &part, rank);
    let (sched, _) = build_schedule_symmetric(
        &part,
        &adj,
        rank,
        stance::inspector::ScheduleStrategy::Sort2,
    );
    let mut runner = LoopRunner::new(
        sched,
        &adj,
        ComputeCostModel::zero(),
        LaplacianKernel { shift },
    )
    .with_overlap(overlap)
    .with_team(team);
    let iv = part.interval_of(rank);
    let mut x = vec![0.0f64; iv.len()];
    let mut r: Vec<f64> = iv.iter().map(|g| b[g]).collect();
    let mut p = r.clone();
    let mut values = runner.make_values(p.clone());

    let mut rho = {
        let local: f64 = r.iter().map(|v| v * v).sum();
        env.allreduce_f64(Tag(1), local, |a, b| a + b)
    };
    let rho0 = rho;
    for _ in 0..max_iters {
        values.set_local(&p);
        runner.apply(env, &mut values);
        let ap = runner.scratch().to_vec();
        let p_dot_ap = {
            let local: f64 = p.iter().zip(&ap).map(|(a, c)| a * c).sum();
            env.allreduce_f64(Tag(2), local, |a, b| a + b)
        };
        let alpha = rho / p_dot_ap;
        for i in 0..x.len() {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rho_next = {
            let local: f64 = r.iter().map(|v| v * v).sum();
            env.allreduce_f64(Tag(3), local, |a, b| a + b)
        };
        if rho_next <= rho0 * 1e-24 {
            break;
        }
        let beta = rho_next / rho;
        for i in 0..p.len() {
            p[i] = r[i] + beta * p[i];
        }
        rho = rho_next;
    }
    (x, trace)
}

/// f64 slices compared as raw bit patterns (catches -0.0 vs 0.0 and NaN
/// payload differences that `==` would hide or over-reject).
pub fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

// ---------------------------------------------------------------------
// The TCP worker registry.
// ---------------------------------------------------------------------

/// Every scenario `src/bin/tcp-rank-worker.rs` can run by name: the 13
/// conformance bodies (each under [`CheckedComm`], returning its trace
/// for parent-side analysis), the two equivalence workloads, and the
/// fault-injection legs — including `fault_kill`, where the injected
/// kill is a real SIGKILL and the victim's "result" is its exit status.
pub const TCP_SCENARIOS: stance_tcp::ScenarioRegistry = &[
    ("conformance:send_recv_ordering", tcp::send_recv_ordering),
    ("conformance:tag_isolation", tcp::tag_isolation),
    ("conformance:barrier_rounds", tcp::barrier_rounds),
    ("conformance:allreduce_ops", tcp::allreduce_ops),
    ("conformance:exchange_ring", tcp::exchange_ring),
    ("conformance:bcast_and_gather", tcp::bcast_and_gather),
    (
        "conformance:irecv_posted_before_send",
        tcp::irecv_posted_before_send,
    ),
    (
        "conformance:mixed_blocking_nonblocking_fifo",
        tcp::mixed_blocking_nonblocking_fifo,
    ),
    (
        "conformance:outstanding_request_tag_isolation",
        tcp::outstanding_request_tag_isolation,
    ),
    (
        "conformance:wait_after_peer_completion",
        tcp::wait_after_peer_completion,
    ),
    (
        "conformance:post_and_recv_deadline",
        tcp::post_and_recv_deadline,
    ),
    (
        "conformance:deadline_timeout_preserves_stream",
        tcp::deadline_timeout_preserves_stream,
    ),
    (
        "conformance:barrier_deadline_releases",
        tcp::barrier_deadline_releases,
    ),
    ("equiv_relax", tcp::equiv_relax),
    ("equiv_cg", tcp::equiv_cg),
    ("fault_marks", tcp::fault_marks),
    ("fault_kill", tcp::fault_kill),
    ("fault_continue", tcp::fault_continue),
    ("fault_wedge", tcp::fault_wedge),
    ("fault_stall", tcp::fault_stall),
];

/// Decodes the trace words a TCP conformance worker returns.
pub fn trace_from_result(bytes: &[u8]) -> RankTrace {
    use stance_tcp::codec::Wire;
    RankTrace::from_payload(Payload::from_u32(Vec::<u32>::from_wire(bytes)))
}

/// The worker-side wrappers: each adapts one generic body to the
/// `fn(&mut TcpComm, &[u8]) -> Vec<u8>` scenario shape.
mod tcp {
    use super::*;
    use stance_tcp::codec::Wire;
    use stance_tcp::TcpComm;

    fn with_trace(c: &mut TcpComm, body: fn(&mut CheckedComm<'_, TcpComm>)) -> Vec<u8> {
        let mut trace = RankTrace::new(c.rank(), c.size());
        body(&mut CheckedComm::attach(c, &mut trace));
        trace.to_payload().into_u32().to_wire()
    }

    macro_rules! conformance_scenarios {
        ($($name:ident),* $(,)?) => {$(
            pub fn $name(c: &mut TcpComm, _args: &[u8]) -> Vec<u8> {
                with_trace(c, |c| crate::conformance::$name(c))
            }
        )*};
    }

    conformance_scenarios!(
        send_recv_ordering,
        tag_isolation,
        barrier_rounds,
        allreduce_ops,
        exchange_ring,
        bcast_and_gather,
        irecv_posted_before_send,
        mixed_blocking_nonblocking_fifo,
        outstanding_request_tag_isolation,
        wait_after_peer_completion,
        post_and_recv_deadline,
        deadline_timeout_preserves_stream,
        barrier_deadline_releases,
    );

    pub fn equiv_relax(c: &mut TcpComm, args: &[u8]) -> Vec<u8> {
        let (iters, overlap, team) = <(usize, bool, usize)>::from_wire(args);
        let m = equiv_mesh();
        let (values, part) = relaxation_body(c, &m, iters, overlap, team);
        (values, part.block_sizes()).to_wire()
    }

    pub fn equiv_cg(c: &mut TcpComm, args: &[u8]) -> Vec<u8> {
        let (max_iters, overlap, team) = <(usize, bool, usize)>::from_wire(args);
        let (m, b, _x_star, shift) = cg_problem();
        let (x, trace) = cg_body(c, &m, &b, shift, max_iters, overlap, team);
        (x, trace.to_payload().into_u32()).to_wire()
    }

    pub fn fault_marks(c: &mut TcpComm, _args: &[u8]) -> Vec<u8> {
        let m = fault_mesh();
        epoch_op_marks(c, &m).to_wire()
    }

    pub fn fault_kill(c: &mut TcpComm, args: &[u8]) -> Vec<u8> {
        let kill_at = u64::from_wire(args);
        let m = fault_mesh();
        // On this backend the victim SIGKILLs itself inside `faulted_run`
        // and never reaches the encode below; the coordinator sees its
        // death as `RankOutcome::Died { signal: Some(9), .. }`.
        faulted_run(c, &m, kill_at).to_wire()
    }

    pub fn fault_continue(c: &mut TcpComm, args: &[u8]) -> Vec<u8> {
        let ckpt_bytes = Vec::<u8>::from_wire(args);
        let m = fault_mesh();
        let ckpt = SessionCheckpoint::<f64>::from_bytes(&ckpt_bytes);
        let (values, part) = continue_from_checkpoint(c, &m, &ckpt);
        (values, part.block_sizes()).to_wire()
    }

    /// Runs `f` with a panic hook that stays silent for injected-fault
    /// payloads. Injected faults unwind through [`catch_fault`] by
    /// design; without this, the worker process's default hook would
    /// splatter an expected unwind's backtrace across the parent test's
    /// stderr. Real panics still report message and location.
    fn with_quiet_injected_faults<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|info| {
            if info
                .payload()
                .downcast_ref::<stance_verify::InjectedFault>()
                .is_none()
            {
                eprintln!("{info}");
            }
        }));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    pub fn fault_wedge(c: &mut TcpComm, _args: &[u8]) -> Vec<u8> {
        let det = detector();
        let plan = FaultPlan::wedge(1, 2);
        let mut faulty = FaultyComm::attach(c, &plan);
        let verdict = match with_quiet_injected_faults(|| {
            catch_fault(|| probe_membership(&mut faulty, &det))
        }) {
            Ok(alive) => Some(alive),
            Err(fault) => {
                assert_eq!(fault.rank, 1);
                assert!(matches!(fault.kind, FaultKind::Wedge));
                // Wedged, not dead: this process stays alive with every
                // socket open but silent, past the survivors' patience
                // window — so eviction must happen by timeout, never by
                // disconnection.
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    det.total_patience_secs() * 2.0,
                ));
                None
            }
        };
        verdict.to_wire()
    }

    pub fn fault_stall(c: &mut TcpComm, _args: &[u8]) -> Vec<u8> {
        let m = fault_mesh();
        let plan = FaultPlan::stall(1, 8, 2.0e-3);
        let mut faulty = FaultyComm::attach(c, &plan);
        let cfg = fault_config();
        let mut s = AdaptiveSession::setup(&mut faulty, &m, RelaxationKernel, fault_init, &cfg);
        let alive = probe_membership(&mut faulty, &detector());
        s.run_block(&mut faulty, BLOCK);
        (
            alive,
            s.local_values().to_vec(),
            s.partition().block_sizes(),
        )
            .to_wire()
    }
}
